#include "runtime/executor.hpp"

#include <bit>
#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::runtime {

namespace {

struct Completion {
  TaskId task;
  bool changed;
};

// MPSC completion buffer: workers push under a short lock; the coordinator
// drains everything accumulated with a single lock + swap.  notify_one
// fires only on the empty→non-empty edge (the coordinator is the only
// waiter and drains fully), so completions arriving while it is busy cost
// no wakeup at all.
class CompletionBuffer {
 public:
  void Push(TaskId task, bool changed) {
    bool was_empty = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      was_empty = items_.empty();
      items_.push_back({task, changed});
    }
    if (was_empty) {
      arrived_.notify_one();
    }
  }

  /// Blocks until at least one completion is buffered, then swaps the whole
  /// buffer into `out` (coordinator only).
  void WaitAndDrain(std::vector<Completion>& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    arrived_.wait(lock, [this] { return !items_.empty(); });
    std::swap(out, items_);
  }

  void Reserve(std::size_t n) { items_.reserve(n); }

 private:
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::vector<Completion> items_;
};

/// How a cascade hands a ready batch to its workers — the only difference
/// between the private-pool and shared-router paths.
using SubmitFn = std::function<void(std::span<const TaskId>)>;

// The coordinator loop, shared by Run (private pool) and RunOn (shared
// router).  The scheduler and the activation bookkeeping live exclusively
// on this (coordinator) thread — workers never touch them, so neither needs
// a lock.  The ONLY coordinator/worker shared state is `completions` (plus,
// when gated, the epoch frontier shared with the neighbouring epochs'
// coordinators).
Executor::RunStats RunCascade(const trace::JobTrace& trace,
                              sched::Scheduler& scheduler,
                              std::size_t num_workers,
                              const Executor::Options& options,
                              CompletionBuffer& completions,
                              const SubmitFn& submit) {
  const graph::Dag& dag = trace.Graph();
  Executor::RunStats stats;
  util::WallTimer wall;
  util::Stopwatch sched_watch;
  util::Stopwatch dispatch_watch;
  util::Stopwatch idle_watch;
  std::size_t window = options.dispatch_window > 0
                           ? options.dispatch_window
                           : std::max<std::size_t>(16, 2 * num_workers);
  // Adaptive window controller (only when the caller didn't pin one):
  // every kControlPeriod completion drains, compare the coordinator's
  // dispatch vs idle duty cycle since the last decision.  Dispatch-bound
  // means per-batch overhead dominates — double the window to amortize it;
  // strongly idle-bound means the workers are the bottleneck and coarse
  // pops only make the scheduler's choices staler — halve it.
  const bool adaptive = options.dispatch_window == 0 && options.adaptive_window;
  constexpr std::size_t kMinWindow = 4;
  constexpr std::size_t kMaxWindow = 4096;
  constexpr std::uint64_t kControlPeriod = 16;
  std::uint64_t control_drains = 0;
  double control_dispatch = 0.0;
  double control_idle = 0.0;
  completions.Reserve(2 * window);

  scheduler.Prepare({&trace, num_workers});

  // Resource accounting plane: acquire each task's resource_utility on
  // dispatch, release it when the completion drains.  The account is
  // normally private to this cascade; a session's pipelined epochs pass a
  // shared one so their joint footprint honours one ceiling.
  ResourceAccount local_account;
  ResourceAccount* const account =
      options.account != nullptr ? options.account : &local_account;
  const std::uint64_t budget = options.memory_budget;
  // Releases must wake sibling coordinators only when a gate exists and
  // the account is actually shared (our own thread can never be waiting
  // while it drains).
  const bool notify_on_release = budget != 0 && options.account != nullptr;

  // Epoch pipelining state.  `outstanding[l]` counts activated-but-
  // uncompleted tasks at dependency level l; the finalized prefix can only
  // grow because activation never flows to a lower level (a task activates
  // its same-level member collectors and strictly-deeper readers).
  const PipelineGate* gate = options.gate;
  if (gate != nullptr && gate->frontier == nullptr) {
    gate = nullptr;
  }
  std::vector<std::size_t> outstanding;
  std::uint32_t published_levels = 0;
  std::uint32_t prev_final = StratumFrontier::kAllLevels;
  if (gate != nullptr) {
    DSCHED_CHECK_MSG(gate->node_level != nullptr &&
                         gate->node_level->size() == dag.NumNodes() &&
                         gate->node_fence != nullptr &&
                         gate->node_fence->size() == dag.NumNodes(),
                     "pipeline gate arrays must cover every DAG node");
    outstanding.assign(gate->num_levels, 0);
    prev_final = gate->frontier->FinalizedLevels(gate->epoch - 1);
  }

  std::vector<bool> activated(dag.NumNodes(), false);
  std::size_t activated_count = 0;
  std::size_t completed_count = 0;
  std::size_t inflight = 0;  ///< handed to the pool, not yet completed

  const auto activate = [&](TaskId t) {
    if (!activated[t]) {
      activated[t] = true;
      ++activated_count;
      if (gate != nullptr) {
        ++outstanding[(*gate->node_level)[t]];
      }
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnActivated(t);
    }
  };
  for (const TaskId t : trace.InitialDirty()) {
    activate(t);
  }

  std::vector<TaskId> batch;
  batch.reserve(window);
  std::vector<TaskId> ready;  ///< fence-cleared slice of a popped batch
  ready.reserve(window);
  /// Popped (scheduler says started) but fence-blocked tasks, parked at
  /// the coordinator.  They do NOT count as inflight: no completion will
  /// arrive for them until released, and the starvation branch below must
  /// see through them.
  std::vector<TaskId> held;
  /// Popped and fence-cleared but refused by the budget gate; FIFO, and
  /// the head blocks the rest so a large task cannot be starved.
  std::vector<TaskId> budget_held;
  std::vector<TaskId> admitted;  ///< budget-cleared slice, dispatch scratch
  std::vector<Completion> drained;
  drained.reserve(2 * window);

  const auto submit_batch = [&](std::span<const TaskId> tasks) {
    inflight += tasks.size();
    stats.inflight_high_water =
        std::max<std::uint64_t>(stats.inflight_high_water, inflight);
    submit(tasks);
  };
  const auto account_task = [&](std::uint64_t utility, std::uint64_t level) {
    stats.mem_acquired_bytes += utility;
    stats.mem_peak_bytes = std::max(stats.mem_peak_bytes, level);
    OBS_COUNTER(Category::kMemAcquire, utility);
  };
  /// Runs `tasks` through the budget gate: admitted ones acquire their
  /// utility and go to the pool, the rest park in budget_held.
  const auto dispatch = [&](std::span<const TaskId> tasks) {
    if (budget == 0) {
      for (const TaskId t : tasks) {
        const std::uint64_t u = trace.Info(t).resource_utility;
        if (u != 0) {
          account_task(u, account->Acquire(u));
        }
      }
      submit_batch(tasks);
      return;
    }
    admitted.clear();
    for (const TaskId t : tasks) {
      const std::uint64_t u = trace.Info(t).resource_utility;
      if (u != 0) {
        // Zero-utility tasks always pass (they cannot move the account);
        // accounted ones queue behind any earlier deferral.
        const std::uint64_t level =
            budget_held.empty() ? account->TryAcquire(u, budget) : 0;
        if (level == 0) {
          budget_held.push_back(t);
          ++stats.mem_deferred;
          OBS_COUNTER(Category::kMemDeferred, 1);
          continue;
        }
        account_task(u, level);
      }
      admitted.push_back(t);
    }
    if (!admitted.empty()) {
      submit_batch(admitted);
    }
  };
  /// Re-admits parked tasks in FIFO order, stopping at the first that
  /// still does not fit.
  const auto release_budget_held = [&] {
    if (budget_held.empty()) {
      return;
    }
    admitted.clear();
    std::size_t taken = 0;
    while (taken < budget_held.size()) {
      const TaskId t = budget_held[taken];
      const std::uint64_t u = trace.Info(t).resource_utility;
      if (u != 0) {
        const std::uint64_t level = account->TryAcquire(u, budget);
        if (level == 0) {
          break;
        }
        account_task(u, level);
      }
      admitted.push_back(t);
      ++taken;
    }
    if (taken > 0) {
      budget_held.erase(budget_held.begin(),
                        budget_held.begin() +
                            static_cast<std::ptrdiff_t>(taken));
      submit_batch(admitted);
    }
  };
  /// Re-checks held tasks against the freshly read frontier.
  const auto release_held = [&] {
    if (held.empty()) {
      return;
    }
    ready.clear();
    std::size_t kept = 0;
    for (const TaskId t : held) {
      if ((*gate->node_fence)[t] <= prev_final) {
        ready.push_back(t);
      } else {
        held[kept++] = t;
      }
    }
    held.resize(kept);
    if (!ready.empty()) {
      dispatch(ready);
    }
  };

  for (;;) {
    // Dispatch: drain the scheduler's entire ready set, one batched pop +
    // one batched submit per `window` tasks.  PopReadyBatch performs the
    // OnStarted transitions itself (engine contract point 6).
    {
      OBS_SCOPE(Category::kExecDispatch);
      const util::StopwatchGuard dispatch_guard(dispatch_watch);
      if (gate != nullptr && prev_final != StratumFrontier::kAllLevels) {
        prev_final = gate->frontier->FinalizedLevels(gate->epoch - 1);
        release_held();
      }
      release_budget_held();
      for (;;) {
        batch.clear();
        std::size_t popped = 0;
        {
          const util::StopwatchGuard guard(sched_watch);
          popped = scheduler.PopReadyBatch(batch, window);
        }
        if (popped == 0) {
          break;
        }
        ++stats.dispatch_batches;
        stats.dispatched += popped;
        stats.max_dispatch_batch =
            std::max<std::uint64_t>(stats.max_dispatch_batch, popped);
        const std::size_t bucket = std::min<std::size_t>(
            Executor::kBatchHistBuckets - 1,
            static_cast<std::size_t>(std::bit_width(popped) - 1));
        ++stats.batch_size_hist[bucket];
        if (gate != nullptr && prev_final != StratumFrontier::kAllLevels) {
          ready.clear();
          for (const TaskId t : batch) {
            if ((*gate->node_fence)[t] <= prev_final) {
              ready.push_back(t);
            } else {
              held.push_back(t);
            }
          }
          stats.held_high_water =
              std::max<std::uint64_t>(stats.held_high_water, held.size());
          if (!ready.empty()) {
            dispatch(ready);
          }
        } else {
          dispatch(batch);
        }
      }
    }

    if (inflight == 0) {
      if (!budget_held.empty()) {
        // Budget stall: nothing running here, so every byte we acquired
        // has been released — any live bytes belong to sibling cascades
        // on a shared account, and their coordinators will release and
        // notify.  Block HERE (coordinator), never in a pool task body.
        const std::uint64_t head_u =
            trace.Info(budget_held.front()).resource_utility;
        if (head_u > budget) {
          // A lone task larger than the whole budget: admissible only
          // from a fully idle account, so the ceiling stretches to at
          // most this one task's utility.
          const std::uint64_t level = account->TryAcquireSolo(head_u);
          if (level != 0) {
            const TaskId solo = budget_held.front();
            budget_held.erase(budget_held.begin());
            ++stats.mem_forced;
            account_task(head_u, level);
            submit_batch(std::span<const TaskId>(&solo, 1));
            continue;
          }
        }
        ++stats.mem_budget_stalls;
        {
          const util::StopwatchGuard stall_guard(idle_watch);
          std::unique_lock<std::mutex> lock(account->mutex);
          account->released.wait(lock, [&] {
            const std::uint64_t live =
                account->live.load(std::memory_order_relaxed);
            return live + head_u <= budget || live == 0;
          });
        }
        continue;  // next round re-runs release_budget_held
      }
      if (!held.empty()) {
        // Frontier stall: nothing running, everything left is fenced on
        // the previous epoch.  Block HERE (coordinator), never in a pool
        // task body — a blocked worker could deadlock the shared pool.
        std::uint32_t min_fence = StratumFrontier::kAllLevels;
        for (const TaskId t : held) {
          min_fence = std::min(min_fence, (*gate->node_fence)[t]);
        }
        ++stats.frontier_stalls;
        {
          OBS_SCOPE(Category::kPipelineStall);
          const util::StopwatchGuard stall_guard(idle_watch);
          util::WallTimer stall_timer;
          prev_final =
              gate->frontier->WaitFinalizedLevels(gate->epoch - 1, min_fence);
          stats.frontier_stall_seconds += stall_timer.ElapsedSeconds();
        }
        release_held();
        continue;
      }
      if (completed_count < activated_count) {
        throw util::LogicError(
            "executor deadlock: scheduler " + std::string(scheduler.Name()) +
            " offers no ready work with " +
            std::to_string(activated_count - completed_count) +
            " tasks incomplete");
      }
      break;
    }

    // Drain: one lock acquisition + buffer swap collects every completion
    // that arrived since the last drain.
    drained.clear();
    {
      OBS_SCOPE(Category::kExecIdle);
      const util::StopwatchGuard idle_guard(idle_watch);
      completions.WaitAndDrain(drained);
      ++stats.completion_drains;
    }
    {
      OBS_SCOPE(Category::kExecDrain);
      const util::StopwatchGuard drain_guard(dispatch_watch);
      for (const Completion& c : drained) {
        --inflight;
        ++completed_count;
        ++stats.executed;
        const std::uint64_t utility = trace.Info(c.task).resource_utility;
        if (utility != 0) {
          account->Release(utility, notify_on_release);
          OBS_COUNTER(Category::kMemRelease, utility);
        }
        if (c.changed) {
          for (const TaskId child : dag.OutNeighbors(c.task)) {
            activate(child);
          }
        }
        // Self-decrement AFTER activating children: a task's same-level
        // collectors must be counted outstanding before the level can
        // look drained.
        if (gate != nullptr) {
          --outstanding[(*gate->node_level)[c.task]];
        }
        const util::StopwatchGuard guard(sched_watch);
        scheduler.OnCompleted(c.task, c.changed);
      }
    }
    if (gate != nullptr) {
      // Publish any newly drained level prefix for epoch+1.  Sound
      // because activation only flows level-upward: once the prefix is
      // empty it can never repopulate.
      std::uint32_t done = published_levels;
      while (done < gate->num_levels && outstanding[done] == 0) {
        ++done;
      }
      if (done > published_levels) {
        published_levels = done;
        stats.levels_finalized = published_levels;
        OBS_COUNTER(Category::kPipelineFinalize, 1);
        gate->frontier->Advance(gate->epoch, published_levels);
      }
    }
    if (adaptive && stats.completion_drains - control_drains >= kControlPeriod) {
      control_drains = stats.completion_drains;
      const double d = dispatch_watch.TotalSeconds() - control_dispatch;
      const double i = idle_watch.TotalSeconds() - control_idle;
      control_dispatch += d;
      control_idle += i;
      if (d > 3.0 * i && window < kMaxWindow) {
        window *= 2;
        ++stats.window_adjusts;
      } else if (i > 8.0 * d && window > kMinWindow) {
        window /= 2;
        ++stats.window_adjusts;
      }
    }
  }

  if (gate != nullptr) {
    gate->frontier->FinalizeAll(gate->epoch);
    stats.levels_finalized = gate->num_levels;
  }

  // One worker-side push per executed task, by construction.
  stats.completion_pushes = stats.executed;
  stats.activations = activated_count;
  stats.final_dispatch_window = window;
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.sched_wall_seconds = sched_watch.TotalSeconds();
  stats.dispatch_wall_seconds = dispatch_watch.TotalSeconds();
  stats.idle_wall_seconds = idle_watch.TotalSeconds();
  return stats;
}

}  // namespace

Executor::RunStats Executor::Run(const trace::JobTrace& trace,
                                 sched::Scheduler& scheduler,
                                 const WorkerTaskBody& body,
                                 const Options& options) {
  DSCHED_CHECK_MSG(options.workers >= 1, "need at least one worker");
  CompletionBuffer completions;
  ThreadPool pool(options.workers,
                  [&](ThreadPool::WorkItem item, std::size_t worker) {
                    const auto t = static_cast<TaskId>(item);
                    const bool changed =
                        body ? body(t, worker) : trace.Info(t).output_changes;
                    completions.Push(t, changed);
                  });
  // Private pool: items are bare TaskIds widened into reusable scratch.
  std::vector<ThreadPool::WorkItem> wide;
  RunStats stats = RunCascade(
      trace, scheduler, options.workers, options, completions,
      [&](std::span<const TaskId> tasks) {
        wide.assign(tasks.begin(), tasks.end());
        pool.SubmitBatch(wide);
      });
  pool.Wait();

  const ThreadPoolStats pool_stats = pool.Stats();
  stats.pool_steals = pool_stats.steals;
  stats.pool_sleeps = pool_stats.sleeps;
  stats.pool_wakeups = pool_stats.wakeups;
  return stats;
}

Executor::RunStats Executor::RunOn(TaskRouter& router,
                                   const trace::JobTrace& trace,
                                   sched::Scheduler& scheduler,
                                   const WorkerTaskBody& body,
                                   const Options& options) {
  CompletionBuffer completions;
  TaskRouter::Channel channel =
      router.OpenChannel([&](TaskId t, std::size_t worker) {
        const bool changed =
            body ? body(t, worker) : trace.Info(t).output_changes;
        completions.Push(t, changed);
      });
  RunStats stats = RunCascade(
      trace, scheduler, router.NumWorkers(), options, completions,
      [&](std::span<const TaskId> tasks) { channel.SubmitBatch(tasks); });
  // All completions are counted, so Close's precondition holds; it spins
  // out any worker still unwinding from the body before returning.
  channel.Close();
  return stats;
}

Executor::RunStats Executor::Run(const trace::JobTrace& trace,
                                 sched::Scheduler& scheduler,
                                 const TaskBody& body,
                                 const Options& options) {
  if (!body) {
    return Run(trace, scheduler, WorkerTaskBody{}, options);
  }
  return Run(trace, scheduler,
             WorkerTaskBody([&body](TaskId t, std::size_t) { return body(t); }),
             options);
}

namespace {

std::uint64_t SecondsToNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

void Executor::RunStats::ExportMetrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.Set(prefix + "executed", executed);
  registry.Set(prefix + "activations", activations);
  registry.Set(prefix + "wall_ns", SecondsToNs(wall_seconds));
  registry.Set(prefix + "sched_overhead_ns", SecondsToNs(sched_wall_seconds));
  registry.Set(prefix + "dispatch_ns", SecondsToNs(dispatch_wall_seconds));
  registry.Set(prefix + "idle_ns", SecondsToNs(idle_wall_seconds));
  registry.Set(prefix + "dispatch_batches", dispatch_batches);
  registry.Set(prefix + "dispatched", dispatched);
  registry.Max(prefix + "max_dispatch_batch", max_dispatch_batch);
  registry.Max(prefix + "inflight_high_water", inflight_high_water);
  registry.Set(prefix + "completion_drains", completion_drains);
  registry.Set(prefix + "completion_pushes", completion_pushes);
  registry.Set(prefix + "pool_steals", pool_steals);
  registry.Set(prefix + "pool_sleeps", pool_sleeps);
  registry.Set(prefix + "pool_wakeups", pool_wakeups);
  registry.Set(prefix + "frontier_stalls", frontier_stalls);
  registry.Set(prefix + "frontier_stall_ns",
               SecondsToNs(frontier_stall_seconds));
  registry.Max(prefix + "held_high_water", held_high_water);
  registry.Set(prefix + "levels_finalized", levels_finalized);
  registry.Set(prefix + "mem_acquired_bytes", mem_acquired_bytes);
  registry.Max(prefix + "mem_peak_bytes", mem_peak_bytes);
  registry.Set(prefix + "mem_deferred", mem_deferred);
  registry.Set(prefix + "mem_budget_stalls", mem_budget_stalls);
  registry.Set(prefix + "mem_forced", mem_forced);
  registry.Set(prefix + "window_adjusts", window_adjusts);
  registry.Set(prefix + "final_dispatch_window", final_dispatch_window);
}

}  // namespace dsched::runtime
