#include "runtime/executor.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>

#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::runtime {

Executor::RunStats Executor::Run(const trace::JobTrace& trace,
                                 sched::Scheduler& scheduler,
                                 const TaskBody& body,
                                 const Options& options) {
  DSCHED_CHECK_MSG(options.workers >= 1, "need at least one worker");
  const graph::Dag& dag = trace.Graph();
  RunStats stats;
  util::WallTimer wall;
  util::Stopwatch sched_watch;

  scheduler.Prepare({&trace, options.workers});

  std::mutex mutex;
  std::condition_variable completions_arrived;
  std::deque<std::pair<TaskId, bool>> completions;
  std::vector<bool> activated(dag.NumNodes(), false);
  std::size_t activated_count = 0;
  std::size_t completed_count = 0;
  std::size_t inflight = 0;

  // All scheduler interaction happens with `mutex` held.
  const auto activate = [&](TaskId t) {
    if (!activated[t]) {
      activated[t] = true;
      ++activated_count;
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnActivated(t);
    }
  };

  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (const TaskId t : trace.InitialDirty()) {
      activate(t);
    }
  }

  ThreadPool pool(options.workers);
  std::unique_lock<std::mutex> lock(mutex);
  for (;;) {
    // Dispatch ready work up to the worker count.
    while (inflight < options.workers) {
      TaskId t = util::kInvalidTask;
      {
        const util::StopwatchGuard guard(sched_watch);
        t = scheduler.PopReady();
      }
      if (t == util::kInvalidTask) {
        break;
      }
      {
        const util::StopwatchGuard guard(sched_watch);
        scheduler.OnStarted(t);
      }
      ++inflight;
      pool.Submit([&, t] {
        const bool changed = body ? body(t) : trace.Info(t).output_changes;
        {
          const std::lock_guard<std::mutex> inner(mutex);
          completions.emplace_back(t, changed);
        }
        completions_arrived.notify_one();
      });
    }

    if (inflight == 0 && completions.empty()) {
      if (completed_count < activated_count) {
        throw util::LogicError(
            "executor deadlock: scheduler " + std::string(scheduler.Name()) +
            " offers no ready work with " +
            std::to_string(activated_count - completed_count) +
            " tasks incomplete");
      }
      break;
    }

    completions_arrived.wait(lock, [&] { return !completions.empty(); });
    while (!completions.empty()) {
      const auto [t, changed] = completions.front();
      completions.pop_front();
      --inflight;
      ++completed_count;
      ++stats.executed;
      if (changed) {
        for (const TaskId child : dag.OutNeighbors(t)) {
          activate(child);
        }
      }
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnCompleted(t, changed);
    }
  }
  lock.unlock();
  pool.Wait();

  stats.activations = activated_count;
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.sched_wall_seconds = sched_watch.TotalSeconds();
  return stats;
}

}  // namespace dsched::runtime
