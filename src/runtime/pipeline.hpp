// Epoch pipelining: run K update cascades of one session concurrently,
// overlapped along the stratification's dependency levels.
//
// The model (DESIGN.md §12): every cascade is tagged with a dense 1-based
// epoch.  A StratumFrontier records, per epoch, how many dependency LEVELS
// the cascade has finalized — level L is finalized once every activated
// task at levels <= L has completed, which (because a phase's write buffers
// wait on the per-shard version counters before the task completes, see
// delta_buffer.hpp) means every store write at those levels is fully
// absorbed and visible.  Epoch e+1's coordinator holds back any task whose
// FENCE exceeds epoch e's finalized level; the fence of a component covers
// both its own writes (write/write against e's same-level tasks) and the
// deepest reader of its member predicates (write/read against e's
// still-running consumers).  Everything else overlaps.
//
// Levels here are NOT the paper's negation strata: component_stratum only
// grows across negative edges, so two components on the same stratum may
// depend on each other.  Pipelining uses the longest-path depth over the
// component condensation instead (datalog/pipeline_plan.hpp), which makes
// "all levels < L finalized" imply "every transitive producer finished".
//
// Threading: Advance/FinalizeAll are called by the owning cascade's
// coordinator thread; FinalizedLevels/WaitFinalizedLevels by the NEXT
// epoch's coordinator.  All waits happen on coordinator threads — never
// inside pool task bodies, so a held cascade cannot starve the shared
// worker pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace dsched::runtime {

/// Per-session record of how far each epoch's cascade has finalized.
/// Thread-safe.  Epochs are expected to be dense and 1-based (the session
/// queue's numbering); epoch 0 is the "before any update" sentinel and is
/// always fully finalized.
class StratumFrontier {
 public:
  /// "Every level finalized" sentinel — larger than any real level count.
  static constexpr std::uint32_t kAllLevels = 0xffffffffu;

  /// Raises `epoch`'s finalized-level count to `levels_done` (monotone:
  /// lower values are ignored).  kAllLevels marks the epoch complete and
  /// advances the dense completion watermark.
  void Advance(std::uint64_t epoch, std::uint32_t levels_done);

  /// Marks `epoch` fully finalized — called when its cascade ends, and on
  /// the error path, so a failed epoch can never wedge its successors.
  void FinalizeAll(std::uint64_t epoch) { Advance(epoch, kAllLevels); }

  /// How many levels are EFFECTIVELY finalized through `epoch`: the
  /// minimum of every in-flight epoch's own count up to and including
  /// `epoch` (levels [0, ret) are done in ALL of them).  The min is what
  /// makes a fence check against epoch e-1 transitively cover e-2, e-3,
  /// ... — an epoch trivially drains levels where it has no tasks, which
  /// says nothing about its still-running predecessors.  Epochs at or
  /// below the completion watermark report kAllLevels.
  [[nodiscard]] std::uint32_t FinalizedLevels(std::uint64_t epoch) const;

  /// Blocks until FinalizedLevels(epoch) >= levels_needed; returns the
  /// value that satisfied the wait.
  std::uint32_t WaitFinalizedLevels(std::uint64_t epoch,
                                    std::uint32_t levels_needed);

  /// Dense watermark: every epoch <= this is fully finalized.
  [[nodiscard]] std::uint64_t CompleteThrough() const;

  /// Advance calls that actually moved a frontier (the pipeline.finalize
  /// counter's source).
  [[nodiscard]] std::uint64_t Finalizations() const;

 private:
  /// effective(epoch) under mutex_ — see FinalizedLevels.
  [[nodiscard]] std::uint32_t EffectiveLocked(std::uint64_t epoch) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Epochs above the watermark with partial progress.  Bounded by the
  /// pipeline depth K in practice, so a flat map is the right structure.
  std::map<std::uint64_t, std::uint32_t> levels_;
  std::uint64_t complete_through_ = 0;
  std::uint64_t finalizations_ = 0;
};

/// Per-cascade pipelining context handed to the executor coordinator
/// (Executor::Options::gate).  Null gate = unpipelined cascade (identical
/// behaviour to before pipelining existed).
struct PipelineGate {
  StratumFrontier* frontier = nullptr;
  /// This cascade's epoch; it gates on epoch-1 and publishes for epoch+1.
  std::uint64_t epoch = 0;
  /// Per-DAG-node dependency level (0-based), sized to the trace's nodes.
  const std::vector<std::uint32_t>* node_level = nullptr;
  /// Per-node fence: how many levels epoch-1 must have finalized before
  /// the node may be handed to the pool.  0 = never waits.
  const std::vector<std::uint32_t>* node_fence = nullptr;
  /// Total dependency levels in the plan (finalized counts cap here).
  std::uint32_t num_levels = 0;
};

}  // namespace dsched::runtime
