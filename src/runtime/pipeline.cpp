#include "runtime/pipeline.hpp"

#include <algorithm>

namespace dsched::runtime {

void StratumFrontier::Advance(std::uint64_t epoch, std::uint32_t levels_done) {
  bool moved = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (epoch <= complete_through_) {
      return;  // already fully finalized
    }
    std::uint32_t& level = levels_[epoch];
    if (levels_done <= level) {
      return;
    }
    level = levels_done;
    moved = true;
    ++finalizations_;
    // Completed epochs advance the dense watermark and leave the map, so
    // the map never outgrows the pipeline depth.
    while (true) {
      const auto it = levels_.find(complete_through_ + 1);
      if (it == levels_.end() || it->second != kAllLevels) {
        break;
      }
      levels_.erase(it);
      ++complete_through_;
    }
  }
  if (moved) {
    cv_.notify_all();
  }
}

std::uint32_t StratumFrontier::EffectiveLocked(std::uint64_t epoch) const {
  if (epoch <= complete_through_) {
    return kAllLevels;
  }
  // effective(e) = min over e' in (watermark, e] of self(e'): an epoch's
  // visible frontier never exceeds its predecessors', so a fence check
  // against epoch e-1 transitively covers EVERY older in-flight epoch.
  // Without the min, epoch e-1 could report levels where it simply has no
  // tasks while e-2 is still writing there (the K >= 3 transitivity hole).
  std::uint32_t effective = kAllLevels;
  for (std::uint64_t e = complete_through_ + 1; e <= epoch; ++e) {
    const auto it = levels_.find(e);
    const std::uint32_t self = it == levels_.end() ? 0 : it->second;
    effective = std::min(effective, self);
    if (effective == 0) {
      break;
    }
  }
  return effective;
}

std::uint32_t StratumFrontier::FinalizedLevels(std::uint64_t epoch) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return EffectiveLocked(epoch);
}

std::uint32_t StratumFrontier::WaitFinalizedLevels(std::uint64_t epoch,
                                                   std::uint32_t levels_needed) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint32_t current = 0;
  cv_.wait(lock, [&] {
    current = EffectiveLocked(epoch);
    return current >= levels_needed;
  });
  return current;
}

std::uint64_t StratumFrontier::CompleteThrough() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return complete_through_;
}

std::uint64_t StratumFrontier::Finalizations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return finalizations_;
}

}  // namespace dsched::runtime
