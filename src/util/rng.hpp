// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (trace generators, property-test
// fuzzers, calibration search) draws from Xoshiro256**, seeded through
// SplitMix64.  Determinism given a seed is a hard requirement: the synthetic
// replacements for the proprietary LogicBlox traces must be reproducible
// bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dsched::util {

/// SplitMix64: used to expand a single 64-bit seed into a full Xoshiro state.
/// (Steele, Lea & Flood, OOPSLA'14.)
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna).  Fast, high-quality, and — unlike
/// std::mt19937_64 — identically specified regardless of standard library.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x5eed'da7a'106cULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform value in [0, bound).  bound must be positive.  Uses Lemire's
  /// nearly-divisionless method, unbiased.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Log-normal draw: exp(N(mu, sigma^2)).  Heavy-tailed task durations in
  /// the synthetic traces are drawn from this family.
  double NextLogNormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare; keeps state minimal).
  double NextGaussian();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each trace
  /// component its own stream so edits to one stage do not shift another.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dsched::util
