// Streaming summary statistics and fixed-bucket histograms.
//
// Used by trace generators (degree / duration distributions), by the
// simulator's metrics block, and by the calibration loop that matches the
// synthetic traces to the published Table I characteristics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsched::util {

/// Welford-style streaming summary: count, min, max, mean, variance.
class Summary {
 public:
  /// Folds one observation into the summary.
  void Add(double x);

  /// Merges another summary into this one (parallel reduction friendly).
  void Merge(const Summary& other);

  [[nodiscard]] std::uint64_t Count() const { return count_; }
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;
  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Sum() const { return mean_ * static_cast<double>(count_); }
  /// Population variance; 0 for fewer than two observations.
  [[nodiscard]] double Variance() const;
  [[nodiscard]] double StdDev() const;

  /// Single-line rendering, e.g. "n=42 min=0.1 mean=1.3 max=9 sd=0.8".
  [[nodiscard]] std::string ToString() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); under/overflow bucketed.
class Histogram {
 public:
  /// Creates a histogram with `buckets` equal-width bins spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t buckets);

  /// Adds one observation.
  void Add(double x);

  [[nodiscard]] std::uint64_t TotalCount() const { return total_; }
  [[nodiscard]] std::uint64_t BucketCount(std::size_t i) const;
  [[nodiscard]] std::size_t Buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t Underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t Overflow() const { return overflow_; }

  /// Quantile estimate by linear interpolation inside the bucket; q in [0,1].
  [[nodiscard]] double Quantile(double q) const;

  /// Multi-line ASCII rendering with proportional bars.
  [[nodiscard]] std::string ToString(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dsched::util
