#include "util/error.hpp"

#include <sstream>

namespace dsched::util {

void ThrowCheckFailure(const char* condition, const char* file, int line,
                       const std::string& detail) {
  std::ostringstream oss;
  oss << "DSCHED_CHECK failed: " << condition << " at " << file << ":" << line;
  if (!detail.empty()) {
    oss << " — " << detail;
  }
  throw LogicError(oss.str());
}

}  // namespace dsched::util
