#include "util/flags.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dsched::util {

FlagSet::FlagSet(std::string program_name)
    : program_name_(std::move(program_name)) {}

std::shared_ptr<std::int64_t> FlagSet::Int(const std::string& name,
                                           std::int64_t default_value,
                                           const std::string& help) {
  DSCHED_CHECK_MSG(Find(name) == nullptr, "duplicate flag: " + name);
  Flag flag{name, help, Kind::kInt, std::make_shared<std::int64_t>(default_value),
            nullptr,   nullptr,    nullptr,
            std::to_string(default_value)};
  flags_.push_back(flag);
  return flags_.back().int_value;
}

std::shared_ptr<double> FlagSet::Double(const std::string& name,
                                        double default_value,
                                        const std::string& help) {
  DSCHED_CHECK_MSG(Find(name) == nullptr, "duplicate flag: " + name);
  Flag flag{name,    help,    Kind::kDouble, nullptr,
            std::make_shared<double>(default_value), nullptr, nullptr,
            std::to_string(default_value)};
  flags_.push_back(flag);
  return flags_.back().double_value;
}

std::shared_ptr<std::string> FlagSet::String(const std::string& name,
                                             const std::string& default_value,
                                             const std::string& help) {
  DSCHED_CHECK_MSG(Find(name) == nullptr, "duplicate flag: " + name);
  Flag flag{name,    help,    Kind::kString, nullptr, nullptr,
            std::make_shared<std::string>(default_value), nullptr,
            "\"" + default_value + "\""};
  flags_.push_back(flag);
  return flags_.back().string_value;
}

std::shared_ptr<bool> FlagSet::Bool(const std::string& name, bool default_value,
                                    const std::string& help) {
  DSCHED_CHECK_MSG(Find(name) == nullptr, "duplicate flag: " + name);
  Flag flag{name,    help,    Kind::kBool, nullptr, nullptr, nullptr,
            std::make_shared<bool>(default_value),
            default_value ? "true" : "false"};
  flags_.push_back(flag);
  return flags_.back().bool_value;
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

void FlagSet::Assign(Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Kind::kInt: {
      const auto parsed = ParseDouble(value, "--" + flag.name);
      *flag.int_value = static_cast<std::int64_t>(parsed);
      break;
    }
    case Kind::kDouble:
      *flag.double_value = ParseDouble(value, "--" + flag.name);
      break;
    case Kind::kString:
      *flag.string_value = value;
      break;
    case Kind::kBool:
      if (value == "true" || value == "1" || value.empty()) {
        *flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        *flag.bool_value = false;
      } else {
        throw ParseError("boolean flag --" + flag.name +
                         " expects true/false, got '" + value + "'");
      }
      break;
  }
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage().c_str());
      return false;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(arg);
    if (flag == nullptr) {
      throw ParseError("unknown flag --" + arg + " (try --help)");
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        *flag->bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw ParseError("flag --" + arg + " requires a value");
      }
      value = argv[++i];
    }
    Assign(*flag, value);
  }
  return true;
}

std::string FlagSet::Usage() const {
  std::ostringstream oss;
  oss << "usage: " << program_name_ << " [flags]\n";
  for (const auto& flag : flags_) {
    oss << "  --" << flag.name << " (default " << flag.default_repr << ")\n"
        << "      " << flag.help << "\n";
  }
  return oss.str();
}

}  // namespace dsched::util
