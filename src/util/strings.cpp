#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace dsched::util {

namespace {
bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) {
      ++i;
    }
    if (i > start) {
      out.push_back(s.substr(start, i - start));
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::uint64_t ParseU64(std::string_view s, std::string_view context) {
  s = Trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected unsigned integer for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

double ParseDouble(std::string_view s, std::string_view context) {
  s = Trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected number for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds != 0.0 && seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

}  // namespace dsched::util
