#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace dsched::util {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  DSCHED_CHECK_MSG(bound > 0, "NextBelow requires a positive bound");
  // Lemire's method: multiply-shift with rejection on the low word.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  DSCHED_CHECK_MSG(lo <= hi, "NextInt requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi] with hi - lo == 2^64 - 1.
  const std::uint64_t draw = (span == 0) ? NextU64() : NextBelow(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  DSCHED_CHECK_MSG(lo <= hi, "NextDouble requires lo <= hi");
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  DSCHED_CHECK_MSG(mean > 0, "exponential mean must be positive");
  double u = NextDouble();
  // Guard against log(0); NextDouble can return exactly 0.
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Rng Rng::Fork() {
  // Derive the child from two fresh draws so parent and child streams are
  // decorrelated.
  const std::uint64_t a = NextU64();
  const std::uint64_t b = NextU64();
  return Rng(a ^ Rotl(b, 29) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace dsched::util
