// Small string utilities shared by the trace/Datalog parsers and printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dsched::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view s);

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> Split(std::string_view s,
                                                  char delim);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> SplitWhitespace(
    std::string_view s);

/// True when `s` begins with `prefix`.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; throws ParseError with `context` on junk.
[[nodiscard]] std::uint64_t ParseU64(std::string_view s,
                                     std::string_view context);

/// Parses a double; throws ParseError with `context` on junk.
[[nodiscard]] double ParseDouble(std::string_view s, std::string_view context);

/// Joins items with a separator, e.g. Join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string Join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Renders seconds in the units the paper's tables use: "21.69 s" or
/// "0.159 ms" for sub-millisecond figures.
[[nodiscard]] std::string FormatSeconds(double seconds);

}  // namespace dsched::util
