#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace dsched::util {

namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarning;
LogSink g_sink;  // empty → stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel GetLogLevel() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void SetLogSink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void ResetLogSink() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = nullptr;
}

void LogMessage(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (level < g_level || g_level == LogLevel::kOff) {
      return;
    }
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace dsched::util
