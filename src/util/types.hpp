// Core scalar types shared across the library.
//
// The scheduling model of the paper (IPDPS'20) speaks about tasks (predicate
// nodes of the computation DAG), levels (longest distance from any source
// node) and simulated time.  We fix their representations here once so every
// module agrees on widths and sentinel values.
#pragma once

#include <cstdint>
#include <limits>

namespace dsched::util {

/// Identifier of a task (a vertex of the computation DAG).  Dense, 0-based.
using TaskId = std::uint32_t;

/// Level of a node: the maximum number of edges on any path from a source
/// node to it.  Source nodes have level 0 (paper, Section II-B).
using Level = std::uint32_t;

/// Simulated time.  The traces carry fractional seconds, so time is a double.
using SimTime = double;

/// Amount of (simulated) work; measured in processor-seconds.
using Work = double;

/// Sentinel for "no task".
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// Sentinel for "level unknown / not computed".
inline constexpr Level kInvalidLevel = std::numeric_limits<Level>::max();

/// Positive infinity for simulated time comparisons.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

}  // namespace dsched::util
