#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace dsched::util {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    DSCHED_CHECK_MSG(row.size() <= header_.size(),
                     "row has more cells than the header");
    row.resize(header_.size());
  }
  rows_.push_back({std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

std::string TextTable::ToString() const {
  // Compute column widths over header and all rows.
  std::size_t columns = header_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.cells.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  const auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    measure(row.cells);
  }

  const auto render_rule = [&](std::ostringstream& oss) {
    for (std::size_t i = 0; i < columns; ++i) {
      oss << "+" << std::string(widths[i] + 2, '-');
    }
    oss << "+\n";
  };
  const auto render_row = [&](std::ostringstream& oss,
                              const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = (i < cells.size()) ? cells[i] : std::string();
      oss << "| " << cell << std::string(widths[i] - cell.size() + 1, ' ');
    }
    oss << "|\n";
  };

  std::ostringstream oss;
  if (!title_.empty()) {
    oss << title_ << "\n";
  }
  render_rule(oss);
  if (!header_.empty()) {
    render_row(oss, header_);
    render_rule(oss);
  }
  for (const auto& row : rows_) {
    if (row.rule_before) {
      render_rule(oss);
    }
    render_row(oss, row.cells);
  }
  render_rule(oss);
  return oss.str();
}

}  // namespace dsched::util
