// Tiny declarative command-line flag parser for examples and bench binaries.
//
//   util::FlagSet flags("table2_lookahead");
//   auto procs = flags.Int("procs", 8, "number of simulated processors");
//   auto seed  = flags.Int("seed", 42, "trace generator seed");
//   flags.Parse(argc, argv);            // throws ParseError on junk
//   Run(*procs, *seed);
//
// Supports --name=value, --name value, and bare boolean --name.  "--help"
// prints usage and returns false from Parse.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dsched::util {

/// A registry of typed flags bound to caller-visible value slots.
class FlagSet {
 public:
  explicit FlagSet(std::string program_name);

  /// Registers an integer flag; the returned pointer stays valid for the
  /// FlagSet's lifetime and holds the default until Parse overwrites it.
  std::shared_ptr<std::int64_t> Int(const std::string& name,
                                    std::int64_t default_value,
                                    const std::string& help);

  /// Registers a floating-point flag.
  std::shared_ptr<double> Double(const std::string& name, double default_value,
                                 const std::string& help);

  /// Registers a string flag.
  std::shared_ptr<std::string> String(const std::string& name,
                                      const std::string& default_value,
                                      const std::string& help);

  /// Registers a boolean flag (bare --name sets true; --name=false works).
  std::shared_ptr<bool> Bool(const std::string& name, bool default_value,
                             const std::string& help);

  /// Parses argv.  Returns false if --help was requested (usage printed to
  /// stdout); throws ParseError for unknown flags or unparseable values.
  bool Parse(int argc, const char* const* argv);

  /// Positional (non-flag) arguments encountered during Parse.
  [[nodiscard]] const std::vector<std::string>& Positional() const {
    return positional_;
  }

  /// Renders the usage text.
  [[nodiscard]] std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    std::shared_ptr<std::int64_t> int_value;
    std::shared_ptr<double> double_value;
    std::shared_ptr<std::string> string_value;
    std::shared_ptr<bool> bool_value;
    std::string default_repr;
  };

  Flag* Find(const std::string& name);
  void Assign(Flag& flag, const std::string& value);

  std::string program_name_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dsched::util
