// Error handling: a small exception hierarchy plus CHECK-style macros.
//
// Following the C++ Core Guidelines (E.2, I.10) we report errors that a
// caller can reasonably handle with exceptions, and program-logic violations
// with DSCHED_CHECK, which throws LogicError carrying file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace dsched::util {

/// Base class of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed external input: trace files, Datalog programs, CLI flags.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Structural violations: cyclic "DAG"s, unstratifiable programs, ...
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violation (a bug in this library, not in user input).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Builds the message for DSCHED_CHECK failures.  Out of line to keep the
/// macro expansion small.
[[noreturn]] void ThrowCheckFailure(const char* condition, const char* file,
                                    int line, const std::string& detail);

}  // namespace dsched::util

/// Validates an internal invariant; throws LogicError with context when the
/// condition is false.  Enabled in all build types: scheduler correctness is
/// the subject of this library, so we never compile the checks out.
#define DSCHED_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dsched::util::ThrowCheckFailure(#cond, __FILE__, __LINE__, "");     \
    }                                                                       \
  } while (false)

/// DSCHED_CHECK with an extra human-readable detail string.
#define DSCHED_CHECK_MSG(cond, detail)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dsched::util::ThrowCheckFailure(#cond, __FILE__, __LINE__, (detail)); \
    }                                                                       \
  } while (false)
