#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace dsched::util {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Summary::Min() const {
  DSCHED_CHECK_MSG(count_ > 0, "Min() of empty Summary");
  return min_;
}

double Summary::Max() const {
  DSCHED_CHECK_MSG(count_ > 0, "Max() of empty Summary");
  return max_;
}

double Summary::Mean() const {
  DSCHED_CHECK_MSG(count_ > 0, "Mean() of empty Summary");
  return mean_;
}

double Summary::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double Summary::StdDev() const { return std::sqrt(Variance()); }

std::string Summary::ToString() const {
  std::ostringstream oss;
  if (count_ == 0) {
    return "n=0";
  }
  oss << "n=" << count_ << " min=" << Min() << " mean=" << Mean()
      << " max=" << Max() << " sd=" << StdDev();
  return oss.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  DSCHED_CHECK_MSG(hi > lo, "Histogram range must be non-empty");
  DSCHED_CHECK_MSG(buckets > 0, "Histogram needs at least one bucket");
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t Histogram::BucketCount(std::size_t i) const {
  DSCHED_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::Quantile(double q) const {
  DSCHED_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double running = static_cast<double>(underflow_);
  if (running >= target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (running + c >= target && c > 0) {
      const double frac = (target - running) / c;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    running += c;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

std::string Histogram::ToString(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream oss;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + static_cast<double>(i) * width_;
    const double b_hi = b_lo + width_;
    const auto bars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    oss << "[" << b_lo << ", " << b_hi << ") " << std::string(bars, '#') << " "
        << counts_[i] << "\n";
  }
  if (underflow_ > 0) {
    oss << "underflow: " << underflow_ << "\n";
  }
  if (overflow_ > 0) {
    oss << "overflow: " << overflow_ << "\n";
  }
  return oss.str();
}

}  // namespace dsched::util
