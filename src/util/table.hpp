// ASCII table renderer.
//
// Every bench binary reproduces one of the paper's tables; this renderer
// prints them with aligned columns so `bench_output.txt` reads like the
// paper's Tables I–III.
#pragma once

#include <string>
#include <vector>

namespace dsched::util {

/// Column-aligned text table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Sets the header row (defines the column count).
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; it may be shorter than the header (padded) but not
  /// longer.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  /// Renders the table; columns are padded to the widest cell.
  [[nodiscard]] std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace dsched::util
