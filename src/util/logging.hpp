// Minimal leveled logger.
//
// The library itself is silent by default (it is a library); examples and
// bench harnesses raise the level to Info.  No global mutable state beyond
// the level and sink, both settable for tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dsched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that gets emitted.  Default: kWarning.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

/// Replaces the sink (default: stderr).  Used by tests to capture output.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);
void ResetLogSink();

/// Emits one message if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {
/// Stream-style builder behind the DSCHED_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace dsched::util

/// Usage: DSCHED_LOG(Info) << "built trace with " << n << " nodes";
#define DSCHED_LOG(severity)                   \
  ::dsched::util::internal::LogLine(          \
      ::dsched::util::LogLevel::k##severity)
