// Wall-clock measurement helpers.
//
// The paper's Table III separates *makespan* (simulated time to run all
// tasks) from *scheduling overhead* (real time the scheduler burns finding
// ready work).  The simulator accumulates the latter with StopwatchGuard
// around every scheduler decision call.
#pragma once

#include <chrono>

namespace dsched::util {

/// Monotonic stopwatch measuring elapsed seconds as a double.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last Reset().
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total seconds across many short measurement windows.
class Stopwatch {
 public:
  /// Total accumulated seconds.
  [[nodiscard]] double TotalSeconds() const { return total_; }

  /// Number of measurement windows accumulated.
  [[nodiscard]] std::uint64_t Laps() const { return laps_; }

  /// Adds a window measured externally.
  void Add(double seconds) {
    total_ += seconds;
    ++laps_;
  }

  /// Clears the accumulator.
  void Reset() {
    total_ = 0.0;
    laps_ = 0;
  }

 private:
  double total_ = 0.0;
  std::uint64_t laps_ = 0;
};

/// RAII guard: measures its own lifetime and adds it to a Stopwatch.
class StopwatchGuard {
 public:
  explicit StopwatchGuard(Stopwatch& sink) : sink_(sink) {}
  StopwatchGuard(const StopwatchGuard&) = delete;
  StopwatchGuard& operator=(const StopwatchGuard&) = delete;
  ~StopwatchGuard() { sink_.Add(timer_.ElapsedSeconds()); }

 private:
  Stopwatch& sink_;
  WallTimer timer_;
};

}  // namespace dsched::util
