// Byte-level accounting of scheduler data structures.
//
// Theorem 2 vs the LogicBlox baseline is a *space* separation: O(n) scheduler
// state and O(V) precomputation versus O(V^2) worst-case interval lists.  The
// MetaScheduler of Theorem 10 additionally needs a *runtime* memory budget it
// can poll so it can abort the wrapped heuristic when the budget is crossed.
// MemoryMeter makes both measurable: every scheduler reports the bytes held
// by its long-lived structures through one of these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dsched::util {

/// Tracks current and peak bytes attributed to one owner (e.g. a scheduler).
class MemoryMeter {
 public:
  /// Registers `bytes` newly allocated by the owner.
  void Allocate(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) {
      peak_ = current_;
    }
  }

  /// Registers `bytes` released by the owner.  Releasing more than is held
  /// clamps to zero (callers sometimes account containers wholesale).
  void Release(std::size_t bytes) {
    current_ = (bytes > current_) ? 0 : current_ - bytes;
  }

  /// Replaces the current figure (for owners that re-measure wholesale).
  void Set(std::size_t bytes) {
    current_ = bytes;
    if (current_ > peak_) {
      peak_ = current_;
    }
  }

  [[nodiscard]] std::size_t CurrentBytes() const { return current_; }
  [[nodiscard]] std::size_t PeakBytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// Renders a byte count with a binary-unit suffix, e.g. "1.50 MiB".
std::string FormatBytes(std::size_t bytes);

}  // namespace dsched::util
