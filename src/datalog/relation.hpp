// Tuple storage: hash-sharded relations, the per-program relation store, and
// cached column indexes for joins.
//
// Layout: a Relation is partitioned into P independent shards by a stable
// tuple-hash (P a power of two, fixed at construction).  Each shard keeps its
// rows in one flat arena of tagged words (`arity` Values per row, contiguous)
// with an open-addressing (linear-probe, backward-shift-delete) hash table
// over shard-local row ids for O(1) membership.  No per-tuple heap
// allocation, no re-hashing of std::vector keys — a membership probe touches
// one shard's slot array and the candidate's arena words only.
//
// Row ids are encoded as (local_row << shard_bits) | shard, so decoding a
// public row id costs two shifts and ids from different shards never collide.
// Bit 31 is reserved (kExtraBit) for overlay views (OldStateView) that need
// to hand out ids for rows not present in the relation.
//
// Concurrency: distinct shards are disjoint down to the allocator, so
// concurrent writers touching different shards never contend.  Writers that
// cannot prove shard ownership stage rows into DeltaChunks and publish them
// with one atomic list-append per shard (MPSC); any thread may then absorb
// the pending chunks into the shard under a per-shard exclusive flag.  See
// delta_buffer.hpp for the worker-side staging buffer.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/value.hpp"

namespace dsched::obs {
class MetricsRegistry;
}  // namespace dsched::obs

namespace dsched::datalog {

/// A set of tuples of fixed arity with O(1) membership, hash-partitioned
/// into independent shards.  Iteration order is shard-major (shard 0's rows
/// in insertion order, then shard 1's, ...), modulo swap-removal on erase.
class Relation {
 public:
  /// Default shard count.  Power of two; 1 degenerates to the unsharded
  /// store (dense row ids, single arena).
  static constexpr std::size_t kDefaultShards = 4;

  /// Reserved id bit for overlay views: row ids produced by a Relation are
  /// always < 2^31, so views layered on top (OldStateView) can tag ids of
  /// rows that live outside the relation.
  static constexpr std::uint32_t kExtraBit = 0x80000000u;

  /// Delta-publication ops.
  static constexpr std::uint8_t kOpErase = 0;
  static constexpr std::uint8_t kOpInsert = 1;
  /// Count adjustment: `deltas[i]` is added to the row's derivation count.
  /// An absent row with a positive resulting count is inserted (born); a
  /// present row whose count reaches zero is erased (died).  This is the
  /// counting-maintenance write op — membership follows the count.
  static constexpr std::uint8_t kOpAdjust = 2;

  /// Per-op outcome codes written to DeltaChunk::results (and returned by
  /// AdjustCount).  For kOpInsert/kOpErase only kNoChange/kChanged occur
  /// (kChanged = insert was fresh / erase found its row).  kOpAdjust
  /// distinguishes structural outcomes: kBorn = the row was inserted,
  /// kDied = the row was erased, kChanged = count moved but the row
  /// neither appeared nor vanished.
  static constexpr std::uint8_t kNoChange = 0;
  static constexpr std::uint8_t kChanged = 1;
  static constexpr std::uint8_t kBorn = 2;
  static constexpr std::uint8_t kDied = 3;

  /// A batch of staged mutations for one shard, published by a writer and
  /// applied by whichever thread absorbs the shard's pending list.  The
  /// publisher owns the chunk's storage; it must not touch any field after
  /// Publish() until `applied` reads true (acquire), at which point
  /// `results[i]` says whether op i took effect (insert was fresh / erase
  /// found its row).
  struct DeltaChunk {
    std::vector<Value> values;          ///< count × arity staged words
    std::vector<std::uint64_t> hashes;  ///< per staged row, full tuple hash
    std::vector<std::uint8_t> ops;      ///< per row: kOpInsert/kOpErase/kOpAdjust
    /// Per-row count delta for kOpAdjust rows (ignored for insert/erase).
    /// Either empty (no adjust ops staged) or sized Count().
    std::vector<std::int32_t> deltas;
    std::vector<std::uint8_t> results;  ///< absorber-written outcome per row
    /// Update epoch of the publishing cascade (0 = untagged).  Absorbed
    /// into the shard's applied_epoch watermark — the epoch pipeline's
    /// "which generation wrote this shard last" diagnostic.
    std::uint64_t epoch = 0;
    DeltaChunk* next = nullptr;         ///< intrusive pending-list link
    std::atomic<bool> applied{false};

    [[nodiscard]] std::size_t Count() const { return hashes.size(); }
    void Reset() {
      values.clear();
      hashes.clear();
      ops.clear();
      deltas.clear();
      results.clear();
      epoch = 0;
      next = nullptr;
      applied.store(false, std::memory_order_relaxed);
    }
  };

  explicit Relation(std::size_t arity = 0,
                    std::size_t shards = kDefaultShards);

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;
  ~Relation() = default;

  [[nodiscard]] std::size_t Arity() const { return arity_; }
  [[nodiscard]] std::size_t Size() const;
  [[nodiscard]] bool Empty() const { return Size() == 0; }

  [[nodiscard]] std::size_t NumShards() const { return num_shards_; }
  [[nodiscard]] std::size_t ShardBits() const { return shard_bits_; }

  /// Shard owning a tuple with hash `hash`.  Uses bits 24..31 of the hash:
  /// the membership slot index consumes the low bits and the slot tag the
  /// high 32, so shard choice stays independent of both for any slot table
  /// up to 16M entries.
  [[nodiscard]] std::size_t ShardOfHash(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash >> 24) & shard_mask_;
  }
  [[nodiscard]] std::size_t ShardOfTuple(RowView tuple) const {
    return ShardOfHash(HashValues(tuple));
  }

  /// Public row id for a shard-local row.
  [[nodiscard]] std::uint32_t EncodeRowId(std::size_t shard,
                                          std::uint32_t local) const {
    return (local << shard_bits_) | static_cast<std::uint32_t>(shard);
  }

  /// Rows currently in `shard`.
  [[nodiscard]] std::uint32_t ShardSize(std::size_t shard) const {
    return shards_[shard].num_rows.load(std::memory_order_relaxed);
  }

  /// Per-shard monotone change counter (see Version()).
  [[nodiscard]] std::uint64_t ShardVersion(std::size_t shard) const {
    return shards_[shard].version.load(std::memory_order_relaxed);
  }

  /// Per-shard erase counter (see EraseEpoch()).  While a shard's epoch is
  /// unchanged, its previously assigned row ids are stable and inserts
  /// strictly append.
  [[nodiscard]] std::uint64_t ShardEraseEpoch(std::size_t shard) const {
    return shards_[shard].erase_epoch.load(std::memory_order_relaxed);
  }

  /// Highest UPDATE epoch (ShardedWriteBuffer::SetEpoch tag, not the erase
  /// counter above) among the chunks absorbed into `shard`; 0 before any
  /// tagged publication.  Diagnostic for the epoch pipeline: which update
  /// generation last touched each shard.
  [[nodiscard]] std::uint64_t ShardAppliedEpoch(std::size_t shard) const {
    return shards_[shard].applied_epoch.load(std::memory_order_relaxed);
  }

  /// Max ShardAppliedEpoch over all shards.
  [[nodiscard]] std::uint64_t LastAppliedEpoch() const {
    std::uint64_t last = 0;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      last = std::max(last, ShardAppliedEpoch(s));
    }
    return last;
  }

  /// The row at public id `row` as a view into its shard's arena.  Valid
  /// until the next Insert (arena growth may move it) or Erase (swap-removal
  /// may overwrite it).
  [[nodiscard]] RowView Row(std::uint32_t row) const {
    const Shard& shard = shards_[row & shard_mask_];
    return {shard.arena.data() +
                std::size_t{row >> shard_bits_} * arity_,
            arity_};
  }

  /// The shard-local row `local` of `shard`.
  [[nodiscard]] RowView ShardRow(std::size_t shard,
                                 std::uint32_t local) const {
    return {shards_[shard].arena.data() + std::size_t{local} * arity_,
            arity_};
  }

  /// Calls fn(public_row_id, row_view) for every row, shard-major.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const Shard& shard = shards_[s];
      const std::uint32_t n = shard.num_rows.load(std::memory_order_relaxed);
      for (std::uint32_t local = 0; local < n; ++local) {
        fn(EncodeRowId(s, local),
           RowView{shard.arena.data() + std::size_t{local} * arity_, arity_});
      }
    }
  }

  /// Materialized copy of all rows (tests, Query), shard-major order.
  [[nodiscard]] std::vector<Tuple> Tuples() const;

  /// True iff the tuple is present.
  [[nodiscard]] bool Contains(RowView tuple) const;
  [[nodiscard]] bool Contains(const Tuple& tuple) const {
    return Contains(RowView(tuple));
  }

  /// Inserts; returns true iff the tuple was new.  Bumps the owning shard's
  /// version.
  bool Insert(RowView tuple);
  bool Insert(const Tuple& tuple) { return Insert(RowView(tuple)); }

  /// Removes; returns true iff the tuple was present.  Bumps the owning
  /// shard's version and erase epoch.  The shard's last row is swapped into
  /// the erased slot (that shard's row ids above it shift).
  bool Erase(RowView tuple);
  bool Erase(const Tuple& tuple) { return Erase(RowView(tuple)); }

  // --- Counting plane ------------------------------------------------------
  //
  // Every row carries a derivation count in a per-shard column co-located
  // with the arena (counts[local] parallels hashes[local]).  The direct
  // mutators keep it trivially consistent: Insert gives a fresh row count 1,
  // Erase drops the row regardless of count.  Counting-maintenance writers
  // instead adjust counts — directly via AdjustCount, or through the
  // lock-free publication path with kOpAdjust rows — and membership follows
  // the count: a row is born when its count becomes positive and dies when
  // it reaches zero.

  /// Current derivation count of `tuple`; 0 when absent.
  [[nodiscard]] std::uint32_t CountOf(RowView tuple) const;
  [[nodiscard]] std::uint32_t CountOf(const Tuple& tuple) const {
    return CountOf(RowView(tuple));
  }

  /// Adds `delta` to the tuple's count (single-owner path).  Returns the
  /// structural outcome: kBorn (row inserted, count = delta), kDied (count
  /// hit zero, row erased), kChanged (count moved, membership unchanged) or
  /// kNoChange (absent row with non-positive delta).  Counts never go
  /// negative — an over-deleting delta clamps at zero.
  std::uint8_t AdjustCount(RowView tuple, std::int32_t delta);
  std::uint8_t AdjustCount(const Tuple& tuple, std::int32_t delta) {
    return AdjustCount(RowView(tuple), delta);
  }

  /// Pre-sizes arenas and hash tables for `rows` total rows (spread evenly
  /// across shards).
  void Reserve(std::size_t rows);

  /// Monotone change counter: the sum of per-shard versions.  Cached
  /// indexes check per-shard versions for staleness; the sum is only used
  /// by code that wants a single "did anything change" fingerprint.
  [[nodiscard]] std::uint64_t Version() const;

  /// Counts erasures only (sum of per-shard epochs).  While a shard's epoch
  /// is unchanged, that shard's row ids are stable and its inserts strictly
  /// append — the condition under which cached indexes extend incrementally
  /// instead of rebuilding.
  [[nodiscard]] std::uint64_t EraseEpoch() const;

  // --- Lock-free delta publication (MPSC per shard) -----------------------
  //
  // Protocol: a writer stages rows for shard S into a DeltaChunk (values /
  // hashes / ops filled, results sized to count) and calls
  // Publish(S, chunk): one release compare-exchange appends the chunk to
  // S's pending list.  Any thread may call TryAbsorb(S); the winner of the
  // per-shard absorbing flag drains the pending list FIFO, applies each
  // chunk with the shard's ordinary single-writer insert/erase code, fills
  // `results`, and stores `applied` with release.  A publisher that needs
  // read-your-writes calls WaitApplied(), which assists by absorbing
  // instead of spinning idle, so progress never depends on a particular
  // thread being scheduled.
  //
  // Safety contract (matches the engine's phase discipline): while chunks
  // may be in flight for a relation, no thread calls the direct mutators
  // (Insert/Erase/Reserve) or reads the shard's rows without first ensuring
  // its chunks applied.  Distinct relations are always independent.

  /// Appends a fully staged chunk to `shard`'s pending list.  The chunk
  /// must stay alive and untouched until `applied` reads true.
  void Publish(std::size_t shard, DeltaChunk* chunk);

  /// Attempts to drain `shard`'s pending list.  Returns false if another
  /// thread holds the shard's absorbing flag (its drain is in progress).
  /// Returns true once this thread has drained the list it observed.
  bool TryAbsorb(std::size_t shard);

  /// Blocks (assisting) until `chunk`, previously Publish()ed to `shard`,
  /// has been applied.
  void WaitApplied(std::size_t shard, const DeltaChunk& chunk);

  /// Drains every shard's pending list.  Single-threaded convenience for
  /// tests and teardown paths.
  void Quiesce();

  /// True if any shard has unapplied published chunks.
  [[nodiscard]] bool HasPending() const;

  // Publication counters (relaxed; monotone).
  [[nodiscard]] std::uint64_t PublishedChunks() const {
    return publish_chunks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t PublishedRows() const {
    return publish_rows_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t AbsorbRuns() const {
    return absorb_runs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t AbsorbWaits() const {
    return absorb_waits_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// One hash partition: arena + per-row hashes + membership table over
  /// shard-local row ids.  num_rows/version/erase_epoch are atomics only so
  /// observers on other threads (Size(), index freshness checks) read
  /// torn-free values; every mutation happens under exclusive ownership of
  /// the shard (direct writer or absorbing-flag holder).
  struct Shard {
    std::vector<Value> arena;            ///< num_rows × arity words
    std::vector<std::uint64_t> hashes;   ///< per-row full hash
    std::vector<std::uint32_t> counts;   ///< per-row derivation count
    /// Hash-tagged slots: high 32 bits = hash tag, low 32 = local row id
    /// + 1; 0 = empty.  A probe rejects mismatched entries on the tag
    /// alone — without touching the per-row hash array or the arena.
    std::vector<std::uint64_t> slots;
    std::atomic<std::uint32_t> num_rows{0};
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> erase_epoch{0};
    /// Max DeltaChunk::epoch absorbed so far (update-epoch watermark).
    std::atomic<std::uint64_t> applied_epoch{0};
    std::atomic<DeltaChunk*> pending{nullptr};  ///< push-only Treiber list
    std::atomic<bool> absorbing{false};         ///< drain exclusion flag
  };

  void InitShards(std::size_t shards);
  void CopyFrom(const Relation& other);

  /// Slot of `shard` whose entry matches `tuple` (hash `hash`), or kNoSlot.
  [[nodiscard]] std::size_t FindSlotLocal(const Shard& shard, RowView tuple,
                                          std::uint64_t hash) const;

  /// Rebuilds `shard`'s slot table at `capacity` (a power of two).
  static void RehashShard(Shard& shard, std::size_t capacity);

  /// Single-owner insert/erase into one shard (hash already computed).
  bool InsertLocal(Shard& shard, RowView tuple, std::uint64_t hash);
  bool EraseLocal(Shard& shard, RowView tuple, std::uint64_t hash);

  /// Single-owner count adjustment (hash already computed); returns
  /// kBorn/kDied/kChanged/kNoChange.
  std::uint8_t AdjustLocal(Shard& shard, RowView tuple, std::uint64_t hash,
                           std::int32_t delta);

  /// Applies one chunk to its shard; caller holds the absorbing flag.
  void ApplyChunk(Shard& shard, DeltaChunk& chunk);

  std::size_t arity_;
  std::size_t num_shards_ = 1;
  std::size_t shard_bits_ = 0;
  std::size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> publish_chunks_{0};
  std::atomic<std::uint64_t> publish_rows_{0};
  std::atomic<std::uint64_t> absorb_runs_{0};
  std::atomic<std::uint64_t> absorb_waits_{0};
};

/// One Relation per predicate of a program, plus a cache of column indexes
/// used by the join machinery.  Copyable: the incremental engine snapshots
/// the store to evaluate overdeletions against the pre-update state (the
/// copy starts with a fresh, empty cache).
///
/// Thread compatibility: the parallel update engine runs component phases
/// concurrently.  Distinct phases never write the same Relation (the
/// dependency DAG's precedence guarantees it), but they do share the index
/// cache.  The cache keeps one atomic entry list per predicate: the
/// read-mostly path walks the list and checks per-shard version stamps with
/// acquire loads — no lock of any kind — and only a rebuild/extension takes
/// the predicate's refresh mutex.  A span returned by Lookup stays valid
/// after Prepare returns because an entry is only refreshed when its
/// relation's version moved, and a relation is never written while another
/// phase may be reading it.
class RelationStore {
 public:
  RelationStore() = default;
  /// Creates empty relations matching the program's predicate arities,
  /// each partitioned into `shards` hash shards.
  explicit RelationStore(const Program& program,
                         std::size_t shards = Relation::kDefaultShards);

  // Copies and moves transfer the relations and start with a fresh, empty
  // cache (the cache is a pure optimisation; nobody may be concurrently
  // reading either side of a copy/move).
  RelationStore(const RelationStore& other)
      : relations_(other.relations_), default_shards_(other.default_shards_) {
    ResetCaches();
  }
  RelationStore& operator=(const RelationStore& other) {
    if (this != &other) {
      relations_ = other.relations_;
      default_shards_ = other.default_shards_;
      ResetCaches();
    }
    return *this;
  }
  RelationStore(RelationStore&& other) noexcept
      : relations_(std::move(other.relations_)),
        default_shards_(other.default_shards_) {
    ResetCaches();
  }
  RelationStore& operator=(RelationStore&& other) noexcept {
    if (this != &other) {
      relations_ = std::move(other.relations_);
      default_shards_ = other.default_shards_;
      ResetCaches();
    }
    return *this;
  }

  /// Appends empty relations for predicates the program gained since this
  /// store was created (incremental rule changes may introduce new
  /// predicates).  Existing relations are untouched.
  void EnsurePredicates(const Program& program);

  [[nodiscard]] Relation& Of(std::uint32_t predicate);
  [[nodiscard]] const Relation& Of(std::uint32_t predicate) const;
  [[nodiscard]] std::size_t NumRelations() const { return relations_.size(); }

  /// Total tuples across all relations.
  [[nodiscard]] std::size_t TotalTuples() const;

  /// Row indices of `predicate` whose values at `columns` equal `key`
  /// (parallel vectors).  Backed by an open-addressing hash index cached
  /// per (predicate, column set), extended incrementally on pure appends
  /// and rebuilt after erasures.
  [[nodiscard]] std::span<const std::uint32_t> Lookup(
      std::uint32_t predicate, const std::vector<std::size_t>& columns,
      const Tuple& key) const;

  /// Number of distinct keys the cached index for (predicate, columns)
  /// holds, or 0 when no up-to-date index exists.  The join planner divides
  /// relation size by this fan-out to estimate lookup cardinality; 0 tells
  /// it to fall back to an independence assumption rather than build an
  /// index it might never use.
  [[nodiscard]] std::size_t IndexDistinct(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;

  // --- Uniform join-source interface (shared with OldStateView so the
  // join machinery can be instantiated over either).
  [[nodiscard]] RowView RowAt(std::uint32_t predicate,
                              std::uint32_t row) const {
    return Of(predicate).Row(row);
  }
  [[nodiscard]] bool ContainsTuple(std::uint32_t predicate,
                                   RowView tuple) const {
    return Of(predicate).Contains(tuple);
  }
  [[nodiscard]] std::size_t RelationSize(std::uint32_t predicate) const {
    return Of(predicate).Size();
  }

  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Publishes store counters as `<prefix>*` gauges/counters (see
  /// docs/OBSERVABILITY.md, "store.*").
  void ExportMetrics(obs::MetricsRegistry& registry,
                     const std::string& prefix = "store.") const;

 private:
  /// One cached column index, partitioned into sub-indexes by *key* hash
  /// (same bits as the relation's shard choice, so a probe touches exactly
  /// one sub-index).  A group stores no key tuple — its key IS the indexed
  /// columns of its first row, read straight from the relation's arena — so
  /// neither building nor probing ever materializes or re-hashes a heap
  /// key.  Freshness is tracked per relation shard: an extension only scans
  /// shards whose version moved, and publishes new per-shard stamps with
  /// release stores so the lock-free fast path can trust everything it
  /// reads after its acquire loads.
  struct CachedIndex {
    struct Group {
      std::uint64_t hash = 0;
      /// Representative row (== rows.front()), denormalized so a probe's
      /// key comparison reads the arena directly instead of chasing the
      /// rows vector's heap buffer first.
      std::uint32_t rep = 0;
      std::vector<std::uint32_t> rows;  ///< public row ids
    };
    /// One key-hash partition: hash-tagged slots (high 32 = tag, low 32 =
    /// group id + 1, 0 = empty) over `groups`.
    struct Sub {
      std::vector<std::uint64_t> slots;
      std::vector<Group> groups;
    };
    std::vector<Sub> subs;  ///< size = relation shard count
    /// Shard count the entry is initialized for; 0 until the first
    /// RefreshIndex finishes the init branch.  The lock-free fast path
    /// gates on this (acquire) instead of reading subs.size() / the
    /// seen_version pointer directly — entries are pushed onto the cache
    /// list before they are initialized, so those members may still be
    /// under construction when a reader first walks to the entry.
    std::atomic<std::size_t> ready_shards{0};
    /// Per relation shard: version stamp the index reflects.  Written with
    /// release after a refresh, read with acquire by the lock-free fast
    /// path; ~0 = never refreshed.
    std::unique_ptr<std::atomic<std::uint64_t>[]> seen_version;
    /// Per relation shard: erase epoch / row watermark the index reflects.
    /// Only touched under the refresh mutex.
    std::vector<std::uint64_t> seen_epoch;
    std::vector<std::uint32_t> rows_indexed;
    std::size_t total_groups = 0;
  };

  /// One intrusive cache entry per (predicate, column-bitmask); entries are
  /// pushed at the head under the refresh mutex and never removed, so a
  /// lock-free walk (acquire on head, plain next) is safe and a
  /// PreparedIndex pointer stays valid for the store's lifetime.
  struct CacheEntry {
    std::uint64_t mask = 0;
    CachedIndex index;
    CacheEntry* next = nullptr;
  };

  /// Per-predicate cache: lock-free entry list + refresh mutex.
  struct PredicateCache {
    std::atomic<CacheEntry*> head{nullptr};
    std::mutex refresh_mutex;
    ~PredicateCache() {
      CacheEntry* e = head.load(std::memory_order_relaxed);
      while (e != nullptr) {
        CacheEntry* next = e->next;
        delete e;
        e = next;
      }
    }
  };

 public:
  /// A resolved (predicate, column set) index, probe-able without locks.
  /// Obtain per rule application via Prepare(); valid while the underlying
  /// relation is unchanged — the same contract as a Lookup() span, which is
  /// what join levels already rely on.  `columns` must outlive the handle
  /// (the join plan owns it).
  struct PreparedIndex {
    const CachedIndex* cached = nullptr;
    const Relation* relation = nullptr;
    const std::vector<std::size_t>* columns = nullptr;
  };

  /// Brings the (predicate, columns) index up to date and hands back a
  /// lock-free probe handle.  When the index is already fresh this takes no
  /// lock at all: an acquire walk of the entry list plus one acquire load
  /// per relation shard.  The per-probe hot path then costs one hash and
  /// one open-addressing scan of a single sub-index.
  [[nodiscard]] PreparedIndex Prepare(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;

  /// Rows matching `key` in a prepared index.
  [[nodiscard]] static std::span<const std::uint32_t> LookupPrepared(
      const PreparedIndex& prepared, const Tuple& key) {
    const CachedIndex::Group* group =
        FindGroup(*prepared.cached, *prepared.relation, *prepared.columns,
                  key, HashValues(key));
    return group == nullptr ? std::span<const std::uint32_t>()
                            : std::span<const std::uint32_t>(group->rows);
  }

  /// The row behind an id produced by LookupPrepared on the same handle.
  [[nodiscard]] static RowView RowIn(const PreparedIndex& prepared,
                                     std::uint32_t row) {
    return prepared.relation->Row(row);
  }

 private:
  /// Entry for `mask` in `cache`, or nullptr.  Lock-free.
  [[nodiscard]] static CacheEntry* FindEntry(const PredicateCache& cache,
                                             std::uint64_t mask);

  /// True iff `cached` reflects every shard of `relation` (acquire loads
  /// pair with RefreshIndex's release stores).
  [[nodiscard]] static bool IsFresh(const CachedIndex& cached,
                                    const Relation& relation);

  /// Brings an entry up to date with its relation; caller holds the
  /// predicate's refresh mutex.
  void RefreshIndex(CachedIndex& cached, const Relation& relation,
                    const std::vector<std::size_t>& columns) const;

  /// Group whose key equals `key` (hash `hash`), or nullptr.
  static const CachedIndex::Group* FindGroup(
      const CachedIndex& cached, const Relation& relation,
      const std::vector<std::size_t>& columns, RowView key,
      std::uint64_t hash);

  /// Recreates one empty cache per relation (caches are not copyable).
  void ResetCaches();

  std::vector<Relation> relations_;
  std::size_t default_shards_ = Relation::kDefaultShards;
  mutable std::vector<std::unique_ptr<PredicateCache>> caches_;
  // Cache-path counters (relaxed; monotone).
  mutable std::atomic<std::uint64_t> prepare_fast_{0};
  mutable std::atomic<std::uint64_t> prepare_locked_{0};
  mutable std::atomic<std::uint64_t> index_rebuilds_{0};
  mutable std::atomic<std::uint64_t> index_extend_rows_{0};
  mutable std::atomic<std::uint64_t> index_shard_skips_{0};
};

}  // namespace dsched::datalog
