// Tuple storage: relations, the per-program relation store, and cached
// column indexes for joins.
//
// Layout: a Relation keeps its rows in one flat arena of tagged words
// (`arity` Values per row, contiguous; row id = arena offset / arity), with
// an open-addressing (linear-probe, backward-shift-delete) hash table over
// row ids for O(1) membership.  No per-tuple heap allocation, no re-hashing
// of std::vector keys — a membership probe touches the slot array and the
// candidate's arena words only.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/value.hpp"

namespace dsched::datalog {

/// A set of tuples of fixed arity with O(1) membership and stable iteration
/// order (insertion order, modulo swap-removal on erase).
class Relation {
 public:
  explicit Relation(std::size_t arity = 0) : arity_(arity) {}

  [[nodiscard]] std::size_t Arity() const { return arity_; }
  [[nodiscard]] std::size_t Size() const { return num_rows_; }
  [[nodiscard]] bool Empty() const { return num_rows_ == 0; }

  /// The row at `row` as a view into the arena.  Valid until the next
  /// Insert (arena growth may move it) or Erase (swap-removal may
  /// overwrite it).
  [[nodiscard]] RowView Row(std::uint32_t row) const {
    return {arena_.data() + std::size_t{row} * arity_, arity_};
  }

  /// Materialized copy of all rows (tests, Query).
  [[nodiscard]] std::vector<Tuple> Tuples() const;

  /// True iff the tuple is present.
  [[nodiscard]] bool Contains(RowView tuple) const;
  [[nodiscard]] bool Contains(const Tuple& tuple) const {
    return Contains(RowView(tuple));
  }

  /// Inserts; returns true iff the tuple was new.  Bumps the version.
  bool Insert(RowView tuple);
  bool Insert(const Tuple& tuple) { return Insert(RowView(tuple)); }

  /// Removes; returns true iff the tuple was present.  Bumps the version.
  /// The last row is swapped into the erased slot (row ids above it shift).
  bool Erase(RowView tuple);
  bool Erase(const Tuple& tuple) { return Erase(RowView(tuple)); }

  /// Pre-sizes the arena and hash table for `rows` total rows.
  void Reserve(std::size_t rows);

  /// Monotone change counter; cached indexes check it for staleness.
  [[nodiscard]] std::uint64_t Version() const { return version_; }

  /// Counts erasures only.  While it is unchanged, previously assigned row
  /// ids are stable and inserts strictly append — the condition under which
  /// cached indexes may extend incrementally instead of rebuilding.
  [[nodiscard]] std::uint64_t EraseEpoch() const { return erase_epoch_; }

  /// Approximate resident bytes.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Slot whose entry matches `tuple` (with hash `hash`), or kNoSlot.
  [[nodiscard]] std::size_t FindSlot(RowView tuple, std::uint64_t hash) const;

  /// Rebuilds the slot table at `capacity` (a power of two).
  void Rehash(std::size_t capacity);

  std::size_t arity_;
  std::size_t num_rows_ = 0;
  std::vector<Value> arena_;            ///< num_rows_ × arity_ words
  std::vector<std::uint64_t> hashes_;   ///< per-row full hash
  /// Hash-tagged slots: high 32 bits = hash tag, low 32 = row id + 1;
  /// 0 = empty.  A probe rejects mismatched entries on the tag alone —
  /// without touching the per-row hash array or the arena.
  std::vector<std::uint64_t> slots_;
  std::uint64_t version_ = 0;
  std::uint64_t erase_epoch_ = 0;
};

/// One Relation per predicate of a program, plus a cache of column indexes
/// used by the join machinery.  Copyable: the incremental engine snapshots
/// the store to evaluate overdeletions against the pre-update state (the
/// copy starts with a fresh, empty cache).
///
/// Thread compatibility: the parallel update engine runs component phases
/// concurrently.  Distinct phases never write the same Relation (the
/// dependency DAG's precedence guarantees it), but they do share the index
/// cache.  The cache is sharded per predicate — phases touching different
/// predicates never contend — and each shard is guarded by a
/// std::shared_mutex: the read-mostly fresh-entry path takes the shared
/// lock, only a rebuild/extension takes the exclusive one.  A span returned
/// by Lookup stays valid after the lock is released because an entry is
/// only refreshed when its relation's version moved, and a relation is
/// never written while another phase may be reading it.
class RelationStore {
 public:
  RelationStore() = default;
  /// Creates empty relations matching the program's predicate arities.
  explicit RelationStore(const Program& program);

  // Copies and moves transfer the relations and start with a fresh, empty
  // cache (the cache is a pure optimisation; nobody may be concurrently
  // reading either side of a copy/move).
  RelationStore(const RelationStore& other) : relations_(other.relations_) {
    ResetCacheShards();
  }
  RelationStore& operator=(const RelationStore& other) {
    if (this != &other) {
      relations_ = other.relations_;
      ResetCacheShards();
    }
    return *this;
  }
  RelationStore(RelationStore&& other) noexcept
      : relations_(std::move(other.relations_)) {
    ResetCacheShards();
  }
  RelationStore& operator=(RelationStore&& other) noexcept {
    if (this != &other) {
      relations_ = std::move(other.relations_);
      ResetCacheShards();
    }
    return *this;
  }

  /// Appends empty relations for predicates the program gained since this
  /// store was created (incremental rule changes may introduce new
  /// predicates).  Existing relations are untouched.
  void EnsurePredicates(const Program& program);

  [[nodiscard]] Relation& Of(std::uint32_t predicate);
  [[nodiscard]] const Relation& Of(std::uint32_t predicate) const;
  [[nodiscard]] std::size_t NumRelations() const { return relations_.size(); }

  /// Total tuples across all relations.
  [[nodiscard]] std::size_t TotalTuples() const;

  /// Row indices of `predicate` whose values at `columns` equal `key`
  /// (parallel vectors).  Backed by an open-addressing hash index cached
  /// per (predicate, column set), extended incrementally on pure appends
  /// and rebuilt after erasures.
  [[nodiscard]] std::span<const std::uint32_t> Lookup(
      std::uint32_t predicate, const std::vector<std::size_t>& columns,
      const Tuple& key) const;

  /// Number of distinct keys the cached index for (predicate, columns)
  /// holds, or 0 when no up-to-date index exists.  The join planner divides
  /// relation size by this fan-out to estimate lookup cardinality; 0 tells
  /// it to fall back to an independence assumption rather than build an
  /// index it might never use.
  [[nodiscard]] std::size_t IndexDistinct(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;

  // --- Uniform join-source interface (shared with OldStateView so the
  // join machinery can be instantiated over either).
  [[nodiscard]] RowView RowAt(std::uint32_t predicate,
                              std::uint32_t row) const {
    return Of(predicate).Row(row);
  }
  [[nodiscard]] bool ContainsTuple(std::uint32_t predicate,
                                   RowView tuple) const {
    return Of(predicate).Contains(tuple);
  }
  [[nodiscard]] std::size_t RelationSize(std::uint32_t predicate) const {
    return Of(predicate).Size();
  }

  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  /// One cached column index: open-addressing table of key groups.  A group
  /// stores no key tuple — its key IS the indexed columns of its first row,
  /// read straight from the relation's arena — so neither building nor
  /// probing ever materializes or re-hashes a heap key.
  struct CachedIndex {
    struct Group {
      std::uint64_t hash = 0;
      /// Representative row (== rows.front()), denormalized so a probe's
      /// key comparison reads the arena directly instead of chasing the
      /// rows vector's heap buffer first.
      std::uint32_t rep = 0;
      std::vector<std::uint32_t> rows;
    };
    std::uint64_t version = ~std::uint64_t{0};
    std::uint64_t erase_epoch = ~std::uint64_t{0};
    /// How many rows of the relation are reflected in the groups; while the
    /// erase epoch is unchanged, rows beyond this are appended
    /// incrementally (the semi-naive hot path inserts in small deltas).
    std::size_t rows_indexed = 0;
    /// Hash-tagged slots: high 32 bits = tag, low 32 = group id + 1;
    /// 0 = empty (same scheme as Relation's membership table).
    std::vector<std::uint64_t> slots;
    std::vector<Group> groups;
  };

  /// One cache shard per predicate.  Key: column-bitmask (arity <= 32).
  /// Entries are heap-boxed so a PreparedIndex pointer survives other
  /// column sets being added to the same shard (map growth moves nodes'
  /// mapped values only if they live inline).
  struct CacheShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<CachedIndex>> entries;
  };

 public:
  /// A resolved (predicate, column set) index, probe-able without locks.
  /// Obtain per rule application via Prepare(); valid while the underlying
  /// relation is unchanged — the same contract as a Lookup() span, which is
  /// what join levels already rely on.  `columns` must outlive the handle
  /// (the join plan owns it).
  struct PreparedIndex {
    const CachedIndex* cached = nullptr;
    const Relation* relation = nullptr;
    const std::vector<std::size_t>* columns = nullptr;
  };

  /// Brings the (predicate, columns) index up to date — taking the shard
  /// lock once — and hands back a lock-free probe handle.  The per-probe
  /// hot path then costs one hash and one open-addressing scan, with no
  /// shard lock and no cache-map find.
  [[nodiscard]] PreparedIndex Prepare(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;

  /// Rows matching `key` in a prepared index.
  [[nodiscard]] static std::span<const std::uint32_t> LookupPrepared(
      const PreparedIndex& prepared, const Tuple& key) {
    const CachedIndex::Group* group =
        FindGroup(*prepared.cached, *prepared.relation, *prepared.columns,
                  key, HashValues(key));
    return group == nullptr ? std::span<const std::uint32_t>()
                            : std::span<const std::uint32_t>(group->rows);
  }

  /// The row behind an id produced by LookupPrepared on the same handle.
  [[nodiscard]] static RowView RowIn(const PreparedIndex& prepared,
                                     std::uint32_t row) {
    return prepared.relation->Row(row);
  }

 private:

  /// Brings an entry up to date with its relation; caller holds the
  /// shard's exclusive lock.
  static void RefreshIndex(CachedIndex& cached, const Relation& relation,
                           const std::vector<std::size_t>& columns);

  /// Group whose key equals `key` (hash `hash`), or nullptr.
  static const CachedIndex::Group* FindGroup(
      const CachedIndex& cached, const Relation& relation,
      const std::vector<std::size_t>& columns, RowView key,
      std::uint64_t hash);

  /// Recreates one empty shard per relation (shards are not copyable).
  void ResetCacheShards();

  std::vector<Relation> relations_;
  mutable std::vector<std::unique_ptr<CacheShard>> cache_shards_;
};

}  // namespace dsched::datalog
