// Tuple storage: relations, the per-program relation store, and cached
// column indexes for joins.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/value.hpp"

namespace dsched::datalog {

/// A set of tuples of fixed arity with O(1) membership and stable iteration
/// order (insertion order, modulo swap-removal on erase).
class Relation {
 public:
  explicit Relation(std::size_t arity = 0) : arity_(arity) {}

  [[nodiscard]] std::size_t Arity() const { return arity_; }
  [[nodiscard]] std::size_t Size() const { return rows_.size(); }
  [[nodiscard]] bool Empty() const { return rows_.empty(); }
  [[nodiscard]] std::span<const Tuple> Rows() const { return rows_; }

  /// True iff the tuple is present.
  [[nodiscard]] bool Contains(const Tuple& tuple) const {
    return index_.contains(tuple);
  }

  /// Inserts; returns true iff the tuple was new.  Bumps the version.
  bool Insert(const Tuple& tuple);

  /// Removes; returns true iff the tuple was present.  Bumps the version.
  bool Erase(const Tuple& tuple);

  /// Monotone change counter; cached indexes check it for staleness.
  [[nodiscard]] std::uint64_t Version() const { return version_; }

  /// Counts erasures only.  While it is unchanged, previously assigned row
  /// ids are stable and inserts strictly append — the condition under which
  /// cached indexes may extend incrementally instead of rebuilding.
  [[nodiscard]] std::uint64_t EraseEpoch() const { return erase_epoch_; }

  /// Approximate resident bytes.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  std::size_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_map<Tuple, std::uint32_t, TupleHash> index_;  // tuple → row
  std::uint64_t version_ = 0;
  std::uint64_t erase_epoch_ = 0;
};

/// One Relation per predicate of a program, plus a cache of column indexes
/// used by the join machinery.  Copyable: the incremental engine snapshots
/// the store to evaluate overdeletions against the pre-update state (the
/// copy starts with a fresh, empty cache).
///
/// Thread compatibility: the parallel update engine runs component phases
/// concurrently.  Distinct phases never write the same Relation (the
/// dependency DAG's precedence guarantees it), but they do share the index
/// cache.  The cache is sharded per predicate — phases touching different
/// predicates never contend — and each shard is guarded by a
/// std::shared_mutex: the read-mostly fresh-entry path takes the shared
/// lock, only a rebuild/extension takes the exclusive one.  A span returned
/// by Lookup stays valid after the lock is released because an entry is
/// only rebuilt when its relation's version moved, and a relation is never
/// written while another phase may be reading it.
class RelationStore {
 public:
  RelationStore() = default;
  /// Creates empty relations matching the program's predicate arities.
  explicit RelationStore(const Program& program);

  // Copies and moves transfer the relations and start with a fresh, empty
  // cache (the cache is a pure optimisation; nobody may be concurrently
  // reading either side of a copy/move).
  RelationStore(const RelationStore& other) : relations_(other.relations_) {
    ResetCacheShards();
  }
  RelationStore& operator=(const RelationStore& other) {
    if (this != &other) {
      relations_ = other.relations_;
      ResetCacheShards();
    }
    return *this;
  }
  RelationStore(RelationStore&& other) noexcept
      : relations_(std::move(other.relations_)) {
    ResetCacheShards();
  }
  RelationStore& operator=(RelationStore&& other) noexcept {
    if (this != &other) {
      relations_ = std::move(other.relations_);
      ResetCacheShards();
    }
    return *this;
  }

  /// Appends empty relations for predicates the program gained since this
  /// store was created (incremental rule changes may introduce new
  /// predicates).  Existing relations are untouched.
  void EnsurePredicates(const Program& program);

  [[nodiscard]] Relation& Of(std::uint32_t predicate);
  [[nodiscard]] const Relation& Of(std::uint32_t predicate) const;
  [[nodiscard]] std::size_t NumRelations() const { return relations_.size(); }

  /// Total tuples across all relations.
  [[nodiscard]] std::size_t TotalTuples() const;

  /// Row indices of `predicate` whose values at `columns` equal `key`
  /// (parallel vectors).  Backed by a hash index cached per (predicate,
  /// column set), extended incrementally on pure appends and rebuilt after
  /// erasures.
  [[nodiscard]] std::span<const std::uint32_t> Lookup(
      std::uint32_t predicate, const std::vector<std::size_t>& columns,
      const Tuple& key) const;

  // --- Uniform join-source interface (shared with OldStateView so the
  // join machinery can be instantiated over either).
  [[nodiscard]] const Tuple& RowAt(std::uint32_t predicate,
                                   std::uint32_t row) const {
    return Of(predicate).Rows()[row];
  }
  [[nodiscard]] bool ContainsTuple(std::uint32_t predicate,
                                   const Tuple& tuple) const {
    return Of(predicate).Contains(tuple);
  }

  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  struct CachedIndex {
    std::uint64_t version = ~std::uint64_t{0};
    std::uint64_t erase_epoch = ~std::uint64_t{0};
    /// How many rows of the relation are reflected in `map`; while the
    /// erase epoch is unchanged, rows beyond this are appended
    /// incrementally (the semi-naive hot path inserts in small deltas).
    std::size_t rows_indexed = 0;
    std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash> map;
  };

  /// One cache shard per predicate.  Key: column-bitmask (arity <= 32).
  /// unordered_map nodes are pointer-stable, so spans into one entry's
  /// vectors survive insertions of other entries.
  struct CacheShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, CachedIndex> entries;
  };

  /// Brings an entry up to date with its relation; caller holds the
  /// shard's exclusive lock.
  static void RefreshIndex(CachedIndex& cached, const Relation& relation,
                           const std::vector<std::size_t>& columns);

  /// Recreates one empty shard per relation (shards are not copyable).
  void ResetCacheShards();

  std::vector<Relation> relations_;
  mutable std::vector<std::unique_ptr<CacheShard>> cache_shards_;
};

}  // namespace dsched::datalog
