// Worker-local staging of relation mutations for the lock-free publication
// protocol (see Relation's "delta publication" section in relation.hpp).
//
// A ShardedWriteBuffer accumulates inserts/erases for one Relation, bucketed
// by target shard, and turns them into DeltaChunks: Flush() publishes one
// chunk per touched shard (a single atomic list-append each), waits until
// every chunk is applied — assisting the absorption itself rather than
// spinning idle — and reports per-row outcomes so callers can drive
// semi-naive deltas off the "was it fresh" bit.  Chunks are recycled through
// a free list, so a steady-state worker stages into already-allocated
// storage.
//
// A StoreWriteBuffer is the per-worker aggregate: one ShardedWriteBuffer per
// predicate, created lazily and rebound across stores.  The parallel update
// engine hands each executor worker its own StoreWriteBuffer, making the
// whole write path of a task mutex-free: stage during the task, publish at
// completion.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "datalog/relation.hpp"

namespace dsched::datalog {

class RelationStore;

/// Stages mutations for one Relation and publishes them as per-shard
/// DeltaChunks.  Single-owner (one worker); the relation may be shared with
/// concurrent publishers and absorbers.
class ShardedWriteBuffer {
 public:
  /// Rows staged for one shard before it is auto-published mid-task.
  static constexpr std::size_t kAutoPublishRows = 1024;

  ShardedWriteBuffer() = default;
  explicit ShardedWriteBuffer(Relation& relation) { Bind(relation); }

  /// Points the buffer at `relation`.  Requires no rows staged or in
  /// flight.  No-op when already bound to it.
  void Bind(Relation& relation);

  [[nodiscard]] bool BoundTo(const Relation& relation) const {
    return relation_ == &relation;
  }

  /// Update-epoch tag stamped on every chunk this buffer publishes from
  /// now on (DeltaChunk::epoch; 0 = untagged).  The parallel engine sets
  /// it per cascade so absorbed shards carry a "which update generation
  /// wrote me last" watermark (Relation::ShardAppliedEpoch).
  void SetEpoch(std::uint64_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t Epoch() const { return epoch_; }

  void StageInsert(RowView tuple);
  void StageInsert(const Tuple& tuple) { StageInsert(RowView(tuple)); }
  void StageErase(RowView tuple);
  void StageErase(const Tuple& tuple) { StageErase(RowView(tuple)); }
  /// Stages a count adjustment (Relation::kOpAdjust): `delta` is added to
  /// the tuple's derivation count; membership follows the count.
  void StageAdjust(RowView tuple, std::int32_t delta);
  void StageAdjust(const Tuple& tuple, std::int32_t delta) {
    StageAdjust(RowView(tuple), delta);
  }

  /// Rows staged but not yet flushed (including auto-published chunks
  /// whose results have not been harvested).
  [[nodiscard]] std::size_t InFlightRows() const { return in_flight_rows_; }

  /// Per-row outcome callback: `op` is Relation::kOpInsert/kOpErase, `row`
  /// views the chunk's storage (valid only during the call), `took_effect`
  /// is true when an insert was fresh or an erase found its row.
  using ResultFn =
      std::function<void(std::uint8_t op, RowView row, bool took_effect)>;

  /// Publishes everything still staged, ensures all published chunks are
  /// applied, invokes `on_result` for every row (publication order per
  /// shard), and recycles the chunks.
  void Flush(const ResultFn& on_result = {});

  /// Like Flush, but hands the full per-row outcome code through
  /// (Relation::kNoChange/kChanged/kBorn/kDied) — counting-maintenance
  /// callers need to distinguish a row being born or dying from a pure
  /// count move, which the boolean callback cannot express.
  using ResultCodeFn =
      std::function<void(std::uint8_t op, RowView row, std::uint8_t code)>;
  void FlushCodes(const ResultCodeFn& on_result);

 private:
  Relation::DeltaChunk* StagingFor(std::size_t shard);
  void PublishShard(std::size_t shard);

  Relation* relation_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<Relation::DeltaChunk>> staging_;  // per shard
  struct Published {
    std::unique_ptr<Relation::DeltaChunk> chunk;
    std::size_t shard = 0;
  };
  std::vector<Published> published_;
  std::vector<std::unique_ptr<Relation::DeltaChunk>> free_;
  std::size_t in_flight_rows_ = 0;
};

/// One ShardedWriteBuffer per predicate of a store, created lazily.  The
/// unit the executor hands to each worker.
class StoreWriteBuffer {
 public:
  /// The buffer for `predicate`, bound to its relation in `store`.
  ShardedWriteBuffer& For(RelationStore& store, std::uint32_t predicate);

  /// Propagates the update-epoch tag to every per-predicate buffer,
  /// current and future (see ShardedWriteBuffer::SetEpoch).
  void SetEpoch(std::uint64_t epoch);

 private:
  std::uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<ShardedWriteBuffer>> buffers_;
};

}  // namespace dsched::datalog
