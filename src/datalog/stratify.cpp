#include "datalog/stratify.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsched::datalog {

namespace {

/// Dependency edge q -> p: head p depends on body predicate q.
struct DepEdge {
  std::uint32_t from = 0;  // body predicate
  std::uint32_t to = 0;    // head predicate
  bool negative = false;
};

/// Iterative Tarjan SCC over the predicate dependency graph.
class Tarjan {
 public:
  Tarjan(std::size_t n, const std::vector<std::vector<std::uint32_t>>& adj)
      : adj_(adj),
        index_(n, kUnvisited),
        lowlink_(n, 0),
        on_stack_(n, false),
        component_(n, 0) {}

  void Run() {
    for (std::uint32_t v = 0; v < index_.size(); ++v) {
      if (index_[v] == kUnvisited) {
        Visit(v);
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint32_t>& Components() const {
    return component_;
  }
  [[nodiscard]] std::uint32_t Count() const { return component_count_; }

 private:
  static constexpr std::uint32_t kUnvisited = 0xffffffffU;

  void Visit(std::uint32_t root) {
    struct Frame {
      std::uint32_t v;
      std::size_t edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t v = frame.v;
      if (frame.edge == 0) {
        index_[v] = lowlink_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.edge < adj_[v].size()) {
        const std::uint32_t w = adj_[v][frame.edge++];
        if (index_[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink_[v] == index_[v]) {
        // v roots a component; pop it.
        for (;;) {
          const std::uint32_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = component_count_;
          if (w == v) {
            break;
          }
        }
        ++component_count_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::uint32_t parent = call_stack.back().v;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<std::uint32_t>>& adj_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::uint32_t> component_;
  std::vector<std::uint32_t> stack_;
  std::uint32_t next_index_ = 0;
  std::uint32_t component_count_ = 0;
};

/// Dependency edges + forward adjacency of `program`.
void CollectDependencies(const Program& program, std::vector<DepEdge>& edges,
                         std::vector<std::vector<std::uint32_t>>& adj) {
  adj.assign(program.NumPredicates(), {});
  for (const Rule& rule : program.rules) {
    for (const BodyElement& element : rule.body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        // Aggregation is non-monotone like negation: it must see its inputs
        // complete, so every body edge of an aggregation rule is "negative"
        // (stratum bump, recursion through it rejected).
        edges.push_back({literal->atom.predicate, rule.head.predicate,
                         literal->negated || rule.IsAggregate()});
        adj[literal->atom.predicate].push_back(rule.head.predicate);
      }
    }
  }
}

/// The stratification tail shared by full and incremental builds: given
/// `component_of`/`component_members`, validates stratifiability and fills
/// the condensation order, recursion flags, strata, and per-component rule
/// lists (all linear in |edges| + |components|).
void FinishStratification(const Program& program,
                          const std::vector<DepEdge>& edges,
                          Stratification& strat) {
  const std::uint32_t num_components =
      static_cast<std::uint32_t>(strat.NumComponents());

  // Reject negation inside a component (negation through recursion).
  for (const DepEdge& edge : edges) {
    if (edge.negative &&
        strat.component_of[edge.from] == strat.component_of[edge.to]) {
      throw util::InvalidArgument(
          "program is not stratifiable: predicate '" +
          program.predicate_names[edge.to] +
          "' depends non-monotonically (negation or aggregation) on '" +
          program.predicate_names[edge.from] +
          "' within the same recursive component");
    }
  }

  // Condensation adjacency + recursion flags.
  std::vector<std::vector<std::uint32_t>> comp_adj(num_components);
  strat.component_recursive.assign(num_components, false);
  for (const DepEdge& edge : edges) {
    const std::uint32_t cf = strat.component_of[edge.from];
    const std::uint32_t ct = strat.component_of[edge.to];
    if (cf == ct) {
      strat.component_recursive[ct] = true;
    } else {
      comp_adj[cf].push_back(ct);
    }
  }

  // Kahn order over the condensation.
  std::vector<std::size_t> indegree(num_components, 0);
  for (std::uint32_t c = 0; c < num_components; ++c) {
    std::sort(comp_adj[c].begin(), comp_adj[c].end());
    comp_adj[c].erase(std::unique(comp_adj[c].begin(), comp_adj[c].end()),
                      comp_adj[c].end());
  }
  for (std::uint32_t c = 0; c < num_components; ++c) {
    for (const std::uint32_t d : comp_adj[c]) {
      ++indegree[d];
    }
  }
  std::vector<std::uint32_t> queue;
  for (std::uint32_t c = 0; c < num_components; ++c) {
    if (indegree[c] == 0) {
      queue.push_back(c);
    }
  }
  std::sort(queue.begin(), queue.end());
  std::size_t head = 0;
  while (head < queue.size()) {
    const std::uint32_t c = queue[head++];
    strat.component_order.push_back(c);
    for (const std::uint32_t d : comp_adj[c]) {
      if (--indegree[d] == 0) {
        queue.push_back(d);
      }
    }
  }
  DSCHED_CHECK_MSG(strat.component_order.size() == num_components,
                   "condensation has a cycle — Tarjan bug");

  // Stratum numbers: max over dependencies; +1 across a negative edge.
  strat.component_stratum.assign(num_components, 0);
  for (const std::uint32_t c : strat.component_order) {
    std::uint32_t stratum = 0;
    for (const DepEdge& edge : edges) {
      if (strat.component_of[edge.to] != c ||
          strat.component_of[edge.from] == c) {
        continue;
      }
      const std::uint32_t from_stratum =
          strat.component_stratum[strat.component_of[edge.from]];
      stratum = std::max(stratum, from_stratum + (edge.negative ? 1U : 0U));
    }
    strat.component_stratum[c] = stratum;
  }

  // Rules per component (by head predicate); facts included.
  strat.component_rules.assign(num_components, {});
  for (std::size_t r = 0; r < program.rules.size(); ++r) {
    const std::uint32_t c =
        strat.component_of[program.rules[r].head.predicate];
    strat.component_rules[c].push_back(r);
  }
}

}  // namespace

Stratification Stratify(const Program& program) {
  const std::size_t n = program.NumPredicates();

  // Collect dependency edges from the rules.
  std::vector<DepEdge> edges;
  std::vector<std::vector<std::uint32_t>> adj;
  CollectDependencies(program, edges, adj);

  Tarjan tarjan(n, adj);
  tarjan.Run();
  const std::uint32_t num_components = std::max<std::uint32_t>(tarjan.Count(), 0);

  Stratification strat;
  strat.component_of = tarjan.Components();
  strat.component_members.assign(num_components, {});
  for (std::uint32_t p = 0; p < n; ++p) {
    strat.component_members[strat.component_of[p]].push_back(p);
  }

  FinishStratification(program, edges, strat);
  return strat;
}

Stratification RestratifyAffected(const Program& program,
                                  const Stratification& old,
                                  std::size_t old_num_predicates,
                                  const std::vector<std::uint32_t>& changed_heads,
                                  std::vector<bool>* affected_out,
                                  RestratifyStats* stats) {
  const std::size_t n = program.NumPredicates();
  DSCHED_CHECK_MSG(old_num_predicates <= n,
                   "rule edits never remove predicates");

  std::vector<DepEdge> edges;
  std::vector<std::vector<std::uint32_t>> adj;
  CollectDependencies(program, edges, adj);

  // Affected cone: downstream closure (over the NEW graph) of every changed
  // rule head plus every predicate the edit introduced.
  std::vector<bool> affected(n, false);
  std::vector<std::uint32_t> frontier;
  const auto seed = [&](std::uint32_t p) {
    if (!affected[p]) {
      affected[p] = true;
      frontier.push_back(p);
    }
  };
  for (const std::uint32_t h : changed_heads) {
    seed(h);
  }
  for (std::uint32_t p = static_cast<std::uint32_t>(old_num_predicates);
       p < n; ++p) {
    seed(p);
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (const std::uint32_t w : adj[frontier[i]]) {
      seed(w);
    }
  }

  Stratification strat;
  strat.component_of.assign(n, 0);
  std::uint32_t next_component = 0;

  // Reuse every old component fully outside the cone, in old-id order.
  // Membership is all-or-none: an old cycle reaching a cone member stays
  // inside the cone (it is downstream-closed through unchanged in-edges),
  // so a partially-affected old component would mean the closure above is
  // broken — check it.
  std::size_t reused = 0;
  for (std::uint32_t oc = 0; oc < old.NumComponents(); ++oc) {
    const std::vector<std::uint32_t>& members = old.component_members[oc];
    std::size_t hit = 0;
    for (const std::uint32_t m : members) {
      hit += affected[m] ? 1u : 0u;
    }
    if (hit != 0) {
      DSCHED_CHECK_MSG(hit == members.size(),
                       "affected cone split an old SCC — closure bug");
      continue;
    }
    for (const std::uint32_t m : members) {
      strat.component_of[m] = next_component;
    }
    strat.component_members.push_back(members);
    ++next_component;
    ++reused;
  }

  // Tarjan over the cone-induced subgraph only.
  std::vector<std::uint32_t> cone;  // local vertex id -> predicate id
  std::vector<std::uint32_t> local(n, 0xffffffffU);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (affected[p]) {
      local[p] = static_cast<std::uint32_t>(cone.size());
      cone.push_back(p);
    }
  }
  std::vector<std::vector<std::uint32_t>> cone_adj(cone.size());
  for (const DepEdge& edge : edges) {
    if (affected[edge.from] && affected[edge.to]) {
      cone_adj[local[edge.from]].push_back(local[edge.to]);
    }
  }
  Tarjan tarjan(cone.size(), cone_adj);
  tarjan.Run();
  strat.component_members.resize(next_component + tarjan.Count());
  for (std::uint32_t i = 0; i < cone.size(); ++i) {
    const std::uint32_t c = next_component + tarjan.Components()[i];
    strat.component_of[cone[i]] = c;
    strat.component_members[c].push_back(cone[i]);
  }

  FinishStratification(program, edges, strat);

  if (affected_out != nullptr) {
    *affected_out = std::move(affected);
  }
  if (stats != nullptr) {
    stats->cone_predicates = cone.size();
    stats->cone_components = tarjan.Count();
    stats->reused_components = reused;
  }
  return strat;
}

}  // namespace dsched::datalog
