// Abstract syntax of Datalog programs.
//
// Supported language (a pragmatic core-plus subset, comparable to what the
// paper's dataflow DAGs are compiled from):
//   * facts:               edge(a, b).
//   * rules:               path(X, Z) :- path(X, Y), edge(Y, Z).
//   * stratified negation: alone(X) :- node(X), !linked(X).
//   * comparison builtins: big(X) :- amount(X, V), V >= 100.
// Variables start with an uppercase letter or '_'; symbols start lowercase;
// integers are decimal literals.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "datalog/value.hpp"

namespace dsched::datalog {

/// A term: a variable (by dense id within its rule) or a ground constant.
struct Term {
  enum class Kind : std::uint8_t { kVariable, kConstant };
  Kind kind = Kind::kConstant;
  /// Variable: index into the rule's variable table.
  std::uint32_t var = 0;
  /// Constant: the ground value.
  Value constant;

  static Term Var(std::uint32_t id) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = v;
    return t;
  }
  [[nodiscard]] bool IsVar() const { return kind == Kind::kVariable; }
};

/// predicate(args...); predicates are interned to dense ids program-wide.
struct Atom {
  std::uint32_t predicate = 0;
  std::vector<Term> args;
};

/// A (possibly negated) relational literal in a rule body.
struct Literal {
  Atom atom;
  bool negated = false;
};

/// Comparison builtin between two terms.
enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Comparison {
  CmpOp op = CmpOp::kEq;
  Term lhs;
  Term rhs;
};

/// One body element: relational literal or builtin comparison.
using BodyElement = std::variant<Literal, Comparison>;

/// Aggregate operator of an aggregation rule head.
enum class AggOp : std::uint8_t { kCount, kSum, kMin, kMax };

/// Aggregation spec: `head(G1, ..., Gk; sum(V)) :- body.`  The head
/// relation has arity k+1 — the group-by terms plus the aggregate result.
/// Semantics: over the set of distinct complete body bindings, group by
/// (G1..Gk) and fold the aggregate over V (ignored for count).
struct Aggregate {
  AggOp op = AggOp::kCount;
  /// The aggregated variable (unused for count).
  std::uint32_t var = 0;
};

/// head :- body.  Facts are rules with an empty body and a ground head.
struct Rule {
  Atom head;
  std::vector<BodyElement> body;
  /// Set iff this is an aggregation rule; the head's last argument position
  /// receives the aggregate result and head.args holds only the group-by
  /// terms.
  std::optional<Aggregate> aggregate;
  /// Variable names by id (diagnostics only).
  std::vector<std::string> variable_names;
  /// Source line (diagnostics).
  std::size_t line = 0;

  [[nodiscard]] bool IsFact() const {
    return body.empty() && !aggregate.has_value();
  }
  [[nodiscard]] bool IsAggregate() const { return aggregate.has_value(); }
};

/// A whole program: rules + interning tables.
struct Program {
  std::vector<Rule> rules;
  /// Predicate names by dense id.
  std::vector<std::string> predicate_names;
  /// Arity per predicate (fixed at first use; mismatches are parse errors).
  std::vector<std::size_t> predicate_arities;
  /// Symbol constants.
  SymbolTable symbols;

  [[nodiscard]] std::size_t NumPredicates() const {
    return predicate_names.size();
  }
  /// Id of a predicate name; throws util::InvalidArgument if unknown.
  [[nodiscard]] std::uint32_t PredicateId(std::string_view name) const;
};

/// Renders a rule back to (approximately) source syntax.
[[nodiscard]] std::string RuleToString(const Rule& rule,
                                       const Program& program);

/// Renders the comparison operator ("<=", "!=", ...).
[[nodiscard]] const char* CmpOpName(CmpOp op);

/// Renders the aggregate operator ("count", "sum", ...).
[[nodiscard]] const char* AggOpName(AggOp op);

/// Evaluates a ground comparison.  Int/symbol comparisons other than
/// equality/inequality on mixed kinds throw util::InvalidArgument.
[[nodiscard]] bool EvalCmp(CmpOp op, Value lhs, Value rhs);

}  // namespace dsched::datalog
