#include "datalog/validate.hpp"

#include <vector>

#include "util/error.hpp"

namespace dsched::datalog {

namespace {

[[noreturn]] void FailRule(const Rule& rule, const Program& program,
                           const std::string& what) {
  throw util::InvalidArgument("unsafe rule (line " + std::to_string(rule.line) +
                              "): " + what + " in: " +
                              RuleToString(rule, program));
}

}  // namespace

void ValidateProgram(const Program& program) {
  // A predicate is defined either by ordinary rules/facts or by aggregation
  // rules, never both — mixed definitions would make the aggregate's
  // recompute-diff maintenance ill-defined.
  std::vector<char> has_agg(program.NumPredicates(), 0);
  std::vector<char> has_plain(program.NumPredicates(), 0);
  for (const Rule& rule : program.rules) {
    (rule.IsAggregate() ? has_agg : has_plain)[rule.head.predicate] = 1;
  }
  for (std::uint32_t p = 0; p < program.NumPredicates(); ++p) {
    if (has_agg[p] != 0 && has_plain[p] != 0) {
      throw util::InvalidArgument(
          "predicate '" + program.predicate_names[p] +
          "' mixes aggregation rules with ordinary rules/facts");
    }
  }

  for (const Rule& rule : program.rules) {
    std::vector<bool> positively_bound(rule.variable_names.size(), false);
    for (const BodyElement& element : rule.body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        if (!literal->negated) {
          for (const Term& term : literal->atom.args) {
            if (term.IsVar()) {
              positively_bound[term.var] = true;
            }
          }
        }
      }
    }

    const auto check_bound = [&](const Term& term, const char* where) {
      if (term.IsVar() && !positively_bound[term.var]) {
        FailRule(rule, program,
                 std::string("variable '") + rule.variable_names[term.var] +
                     "' in " + where +
                     " does not occur in any positive body literal");
      }
    };

    if (rule.IsFact()) {
      for (const Term& term : rule.head.args) {
        if (term.IsVar()) {
          FailRule(rule, program, "fact with a variable argument");
        }
      }
      continue;
    }
    for (const Term& term : rule.head.args) {
      check_bound(term, "the head");
    }
    if (rule.IsAggregate() && rule.aggregate->op != AggOp::kCount) {
      check_bound(Term::Var(rule.aggregate->var), "the aggregate");
    }
    for (const BodyElement& element : rule.body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        if (literal->negated) {
          for (const Term& term : literal->atom.args) {
            check_bound(term, "a negated literal");
          }
        }
      } else {
        const auto& cmp = std::get<Comparison>(element);
        check_bound(cmp.lhs, "a comparison");
        check_bound(cmp.rhs, "a comparison");
      }
    }
  }
}

}  // namespace dsched::datalog
