// High-level facade: parse → validate → stratify → materialize → update.
//
//   Database db(R"(
//     path(X, Y) :- edge(X, Y).
//     path(X, Z) :- path(X, Y), edge(Y, Z).
//   )");
//   db.Insert("edge", {db.Sym("a"), db.Sym("b")});
//   db.Materialize();
//   auto rows = db.Query("path");
//   Database::Update u;
//   u.Insert("edge", {db.Sym("b"), db.Sym("c")});
//   auto stats = db.Apply(u);         // incremental, not from scratch
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/incremental.hpp"
#include "datalog/maintenance.hpp"
#include "datalog/parallel_update.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"

namespace dsched::runtime {
class TaskRouter;
class StratumFrontier;
}

namespace dsched::datalog {

/// One materialized Datalog database.
class Database {
 public:
  /// Parses, validates, and stratifies the program text.  Throws
  /// util::ParseError / util::InvalidArgument on bad programs.
  explicit Database(std::string_view program_text);

  /// Interns a symbol constant.
  [[nodiscard]] Value Sym(std::string_view name) {
    return Value::Symbol(program_.symbols.Intern(name));
  }

  /// Adds a base fact before materialization (or as part of ordinary
  /// evaluation bootstrap).  Tuple arity must match the predicate.
  void Insert(std::string_view predicate, Tuple tuple);

  /// Runs from-scratch evaluation to fixpoint.  Idempotent.
  EvalStats Materialize();

  /// All rows of a predicate (shard-major order; within a shard, insertion
  /// order modulo swap-removal on erase).
  [[nodiscard]] std::vector<Tuple> Query(std::string_view predicate) const;

  /// Membership test.
  [[nodiscard]] bool Contains(std::string_view predicate,
                              const Tuple& tuple) const;

  /// A batch of base changes, built against this database's interning.
  class Update {
   public:
    Update& Insert(std::string_view predicate, Tuple tuple);
    Update& Delete(std::string_view predicate, Tuple tuple);

    /// The accumulated raw request (predicate-id form) — how the service
    /// layer hands a built batch to a session queue.
    [[nodiscard]] const UpdateRequest& Request() const { return request_; }

   private:
    friend class Database;
    explicit Update(Database& db) : db_(&db) {}
    Database* db_;
    UpdateRequest request_;
  };

  /// Starts an update batch.
  [[nodiscard]] Update MakeUpdate() { return Update(*this); }

  /// Applies a batch incrementally.  Requires Materialize() first.
  UpdateResult Apply(const Update& update);

  /// Applies a batch incrementally with the per-component phases executed
  /// in parallel on worker threads, ordered by a scheduler (see
  /// datalog/parallel_update.hpp).  Final state identical to Apply().
  struct ParallelOptions {
    std::string scheduler_spec = "hybrid";
    std::size_t workers = 4;
    /// When set, the update's cascade runs on this shared router instead of
    /// a private pool and `workers` is ignored (see parallel_update.hpp).
    runtime::TaskRouter* router = nullptr;
    /// Maintenance strategy for this update; empty inherits the database
    /// default (SetDefaultStrategy).
    std::optional<MaintenanceStrategy> strategy;
    /// Epoch pipelining (runtime/pipeline.hpp): when `frontier` is set the
    /// cascade gates on epoch-1's finalized levels and publishes its own,
    /// using this database's cached PipelinePlan.  The caller owns the
    /// frontier (one per session) and guarantees the strategy is
    /// pipeline-eligible when epochs overlap.
    runtime::StratumFrontier* frontier = nullptr;
    std::uint64_t epoch = 0;
    /// Live-resource ceiling over the cascade's accounted task utilities
    /// (0 = account only) and the optionally shared account it meters
    /// (see parallel_update.hpp / runtime/executor.hpp).
    std::uint64_t memory_budget = 0;
    runtime::ResourceAccount* account = nullptr;
  };
  UpdateResult ApplyParallel(const Update& update,
                             const ParallelOptions& options);
  UpdateResult ApplyParallel(const Update& update) {
    return ApplyParallel(update, ParallelOptions{});
  }

  /// Raw-request variants of Apply/ApplyParallel for callers (the service
  /// session loop) that already hold predicate-id batches.  The parallel
  /// variant also surfaces executor-level RunStats.
  UpdateResult ApplyRequest(const UpdateRequest& request);
  UpdateResult ApplyRequest(const UpdateRequest& request,
                            MaintenanceStrategy strategy);
  ParallelUpdateResult ApplyRequestParallel(const UpdateRequest& request,
                                            const ParallelOptions& options);

  /// Default maintenance strategy for Apply/ApplyRequest and for
  /// ApplyParallel calls that don't pick their own (maintenance.hpp).
  void SetDefaultStrategy(MaintenanceStrategy strategy) {
    default_strategy_ = strategy;
  }
  [[nodiscard]] MaintenanceStrategy DefaultStrategy() const {
    return default_strategy_;
  }
  /// The database-owned cross-update counting state.  Every apply path
  /// threads it through, so counting sessions pay count initialization
  /// once (and again only after a non-counting update touches the store).
  [[nodiscard]] MaintenanceState& MaintState() { return maint_state_; }

  /// Incremental RULE changes (the paper's other trigger: "the rule
  /// definitions change").  Both maintain the materialization without a
  /// from-scratch re-evaluation:
  ///  * AddRules parses additional clauses (they may introduce new
  ///    predicates), re-stratifies, and propagates the new rules'
  ///    derivations as insertions;
  ///  * RemoveRule identifies an existing rule by its textual clause,
  ///    removes it, and DRed-propagates the loss of its derivations
  ///    (rederiving anything the remaining rules still support).
  /// Validation or stratification failures leave the database unchanged.
  UpdateResult AddRules(std::string_view rules_text);
  UpdateResult RemoveRule(std::string_view clause_text);

  [[nodiscard]] const Program& GetProgram() const { return program_; }
  [[nodiscard]] const Stratification& GetStratification() const {
    return strat_;
  }
  /// The cached pipelining plan (levels + fences), rebuilt whenever the
  /// rule set re-stratifies (AddRules/RemoveRule).
  [[nodiscard]] const PipelinePlan& Plan() const { return plan_; }
  [[nodiscard]] const RelationStore& Store() const { return store_; }
  [[nodiscard]] bool Materialized() const { return materialized_; }

 private:
  Program program_;
  Stratification strat_;
  PipelinePlan plan_;
  RelationStore store_;
  MaintenanceStrategy default_strategy_ = MaintenanceStrategy::kDRed;
  MaintenanceState maint_state_;
  bool materialized_ = false;
};

}  // namespace dsched::datalog
