// High-level facade: parse → validate → stratify → materialize → update.
//
//   Database db(R"(
//     path(X, Y) :- edge(X, Y).
//     path(X, Z) :- path(X, Y), edge(Y, Z).
//   )");
//   db.Insert("edge", {db.Sym("a"), db.Sym("b")});
//   db.Materialize();
//   auto rows = db.Query("path");
//   Database::Update u;
//   u.Insert("edge", {db.Sym("b"), db.Sym("c")});
//   auto stats = db.Apply(u);         // incremental, not from scratch
//
// Program-derived state lives in a versioned, immutable CompiledProgram
// snapshot (compiled_program.hpp).  EvolveAddRules/EvolveRemoveRule publish
// a new version atomically; concurrent readers (the wire frontend's op
// translation, query rendering) pin Snapshot() once per dispatch and never
// observe a torn (program, strat, plan) triple.  The relation store is
// shared across versions — evolution maintains it in place.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/compiled_program.hpp"
#include "datalog/incremental.hpp"
#include "datalog/maintenance.hpp"
#include "datalog/parallel_update.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"

namespace dsched::runtime {
class TaskRouter;
class StratumFrontier;
}

namespace dsched::datalog {

/// One materialized Datalog database.
class Database {
 public:
  /// Parses, validates, and stratifies the program text.  Throws
  /// util::ParseError / util::InvalidArgument on bad programs.
  explicit Database(std::string_view program_text);

  /// Interns a symbol constant.  Thread-safe against concurrent Sym calls
  /// and against rule evolution (the table is append-only; ids are stable
  /// across program versions).
  [[nodiscard]] Value Sym(std::string_view name) {
    const std::lock_guard<std::mutex> lock(sym_mutex_);
    return Value::Symbol(compiled_->program.symbols.Intern(name));
  }

  /// Renders a symbol id under the same lock Sym interns under.  The table
  /// queried is the CURRENT one — at least as new as any id obtained from
  /// this database, so every id renders.
  [[nodiscard]] std::string SymName(const Value& value) const {
    const std::lock_guard<std::mutex> lock(sym_mutex_);
    return compiled_->program.symbols.NameOf(value.AsSymbol());
  }

  /// Adds a base fact before materialization (or as part of ordinary
  /// evaluation bootstrap).  Tuple arity must match the predicate.
  void Insert(std::string_view predicate, Tuple tuple);

  /// Runs from-scratch evaluation to fixpoint.  Idempotent.
  EvalStats Materialize();

  /// All rows of a predicate (shard-major order; within a shard, insertion
  /// order modulo swap-removal on erase).
  [[nodiscard]] std::vector<Tuple> Query(std::string_view predicate) const;

  /// Membership test.
  [[nodiscard]] bool Contains(std::string_view predicate,
                              const Tuple& tuple) const;

  /// A batch of base changes, built against this database's interning.
  class Update {
   public:
    Update& Insert(std::string_view predicate, Tuple tuple);
    Update& Delete(std::string_view predicate, Tuple tuple);

    /// The accumulated raw request (predicate-id form) — how the service
    /// layer hands a built batch to a session queue.
    [[nodiscard]] const UpdateRequest& Request() const { return request_; }

   private:
    friend class Database;
    explicit Update(Database& db) : db_(&db) {}
    Database* db_;
    UpdateRequest request_;
  };

  /// Starts an update batch.
  [[nodiscard]] Update MakeUpdate() { return Update(*this); }

  /// Applies a batch incrementally.  Requires Materialize() first.
  UpdateResult Apply(const Update& update);

  /// Applies a batch incrementally with the per-component phases executed
  /// in parallel on worker threads, ordered by a scheduler (see
  /// datalog/parallel_update.hpp).  Final state identical to Apply().
  struct ParallelOptions {
    std::string scheduler_spec = "hybrid";
    std::size_t workers = 4;
    /// When set, the update's cascade runs on this shared router instead of
    /// a private pool and `workers` is ignored (see parallel_update.hpp).
    runtime::TaskRouter* router = nullptr;
    /// Maintenance strategy for this update; empty inherits the database
    /// default (SetDefaultStrategy).
    std::optional<MaintenanceStrategy> strategy;
    /// Epoch pipelining (runtime/pipeline.hpp): when `frontier` is set the
    /// cascade gates on epoch-1's finalized levels and publishes its own,
    /// using this database's cached PipelinePlan.  The caller owns the
    /// frontier (one per session) and guarantees the strategy is
    /// pipeline-eligible when epochs overlap.
    runtime::StratumFrontier* frontier = nullptr;
    std::uint64_t epoch = 0;
    /// Live-resource ceiling over the cascade's accounted task utilities
    /// (0 = account only) and the optionally shared account it meters
    /// (see parallel_update.hpp / runtime/executor.hpp).
    std::uint64_t memory_budget = 0;
    runtime::ResourceAccount* account = nullptr;
  };
  UpdateResult ApplyParallel(const Update& update,
                             const ParallelOptions& options);
  UpdateResult ApplyParallel(const Update& update) {
    return ApplyParallel(update, ParallelOptions{});
  }

  /// Raw-request variants of Apply/ApplyParallel for callers (the service
  /// session loop) that already hold predicate-id batches.  The parallel
  /// variant also surfaces executor-level RunStats.  Each dispatch pins the
  /// compiled-program snapshot exactly once and reads program/strat/plan
  /// off that pin.
  UpdateResult ApplyRequest(const UpdateRequest& request);
  UpdateResult ApplyRequest(const UpdateRequest& request,
                            MaintenanceStrategy strategy);
  ParallelUpdateResult ApplyRequestParallel(const UpdateRequest& request,
                                            const ParallelOptions& options);

  /// Default maintenance strategy for Apply/ApplyRequest and for
  /// ApplyParallel calls that don't pick their own (maintenance.hpp).
  void SetDefaultStrategy(MaintenanceStrategy strategy) {
    default_strategy_ = strategy;
  }
  [[nodiscard]] MaintenanceStrategy DefaultStrategy() const {
    return default_strategy_;
  }
  /// The database-owned cross-update counting state.  Every apply path
  /// threads it through, so counting sessions pay count initialization
  /// once (and again only after a non-counting update touches the store).
  [[nodiscard]] MaintenanceState& MaintState() { return maint_state_; }

  /// What one rule-set evolution did: the maintenance cascade's result,
  /// the program version it published, and the cone/reuse accounting.
  struct EvolveResult {
    UpdateResult update;
    std::uint64_t program_version = 0;
    EvolveStats stats;
  };

  /// Incremental RULE changes (the paper's other trigger: "the rule
  /// definitions change").  Both maintain the materialization without a
  /// from-scratch re-evaluation:
  ///  * EvolveAddRules parses additional clauses (they may introduce new
  ///    predicates), re-stratifies only the affected cone, and propagates
  ///    the new rules' derivations as insertions;
  ///  * EvolveRemoveRule identifies an existing rule by its textual
  ///    clause, removes it, and propagates the loss of its derivations
  ///    under the current default strategy (rederiving anything the
  ///    remaining rules still support).
  /// Maintenance runs only on the cone's components; the counting plane is
  /// invalidated for exactly the cone (MarkCountingStale) instead of
  /// globally.  Validation or stratification failures leave the database
  /// unchanged (the new snapshot is built before anything is published).
  EvolveResult EvolveAddRules(std::string_view rules_text);
  EvolveResult EvolveRemoveRule(std::string_view clause_text);

  /// Back-compat shims returning just the cascade result.
  UpdateResult AddRules(std::string_view rules_text) {
    return EvolveAddRules(rules_text).update;
  }
  UpdateResult RemoveRule(std::string_view clause_text) {
    return EvolveRemoveRule(clause_text).update;
  }

  /// Pins the current compiled snapshot.  The one acquire a concurrent
  /// reader needs: everything program-derived hangs off the returned
  /// pointer, immutable for its lifetime (symbol table aside — see
  /// CompiledProgram).
  [[nodiscard]] std::shared_ptr<const CompiledProgram> Snapshot() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return compiled_;
  }
  /// The current program version (1-based; bumped by every evolution).
  [[nodiscard]] std::uint64_t ProgramVersion() const {
    return Snapshot()->version;
  }

  /// Direct references into the CURRENT snapshot.  Valid only while the
  /// caller is serialized with rule evolution (single-threaded use, or the
  /// session's epoch serialization); concurrent readers pin Snapshot().
  [[nodiscard]] const Program& GetProgram() const {
    return compiled_->program;
  }
  [[nodiscard]] const Stratification& GetStratification() const {
    return compiled_->strat;
  }
  /// The cached pipelining plan (levels + fences), rebuilt whenever the
  /// rule set re-stratifies (EvolveAddRules/EvolveRemoveRule).
  [[nodiscard]] const PipelinePlan& Plan() const { return compiled_->plan; }
  [[nodiscard]] const RelationStore& Store() const { return store_; }
  [[nodiscard]] bool Materialized() const { return materialized_; }

 private:
  /// Seeds, scopes, and runs the maintenance cascade for one published
  /// evolution (shared tail of EvolveAddRules/EvolveRemoveRule).
  UpdateResult PropagateEvolution(const CompiledProgram& next,
                                  const std::vector<bool>& affected,
                                  GroupedBaseChanges& base,
                                  std::vector<bool>& force);

  /// The current snapshot; swapped under BOTH mutexes by evolution.
  std::shared_ptr<CompiledProgram> compiled_;
  /// Guards the compiled_ pointer itself (Snapshot vs swap).
  mutable std::mutex snapshot_mutex_;
  /// Guards the symbol table: Sym/SymName interning and rendering vs the
  /// evolution's program deep-copy (which reads the whole table).
  mutable std::mutex sym_mutex_;
  RelationStore store_;
  MaintenanceStrategy default_strategy_ = MaintenanceStrategy::kDRed;
  MaintenanceState maint_state_;
  bool materialized_ = false;
};

}  // namespace dsched::datalog
