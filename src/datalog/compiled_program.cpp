#include "datalog/compiled_program.hpp"

#include <utility>

#include "datalog/validate.hpp"

namespace dsched::datalog {

std::shared_ptr<CompiledProgram> CompileProgram(Program program) {
  ValidateProgram(program);
  auto compiled = std::make_shared<CompiledProgram>();
  compiled->version = 1;
  compiled->program = std::move(program);
  compiled->strat = Stratify(compiled->program);
  compiled->plan = BuildPipelinePlan(compiled->program, compiled->strat);
  return compiled;
}

std::shared_ptr<CompiledProgram> RecompileProgram(
    const CompiledProgram& old, Program program,
    const std::vector<std::uint32_t>& changed_heads,
    std::vector<bool>* affected_out, EvolveStats* stats) {
  // Validate and re-stratify BEFORE allocating the snapshot's version so a
  // throw leaves nothing half-published.
  ValidateProgram(program);
  RestratifyStats restrat;
  Stratification strat =
      RestratifyAffected(program, old.strat, old.program.NumPredicates(),
                         changed_heads, affected_out, &restrat);

  auto compiled = std::make_shared<CompiledProgram>();
  compiled->version = old.version + 1;
  compiled->program = std::move(program);
  compiled->strat = std::move(strat);
  compiled->plan = BuildPipelinePlan(compiled->program, compiled->strat);
  if (stats != nullptr) {
    stats->cone_predicates = restrat.cone_predicates;
    stats->cone_components = restrat.cone_components;
    stats->reused_components = restrat.reused_components;
  }
  return compiled;
}

}  // namespace dsched::datalog
