// Incremental maintenance of a materialized Datalog program: insertions via
// semi-naive continuation, deletions via DRed (delete-and-rederive,
// Gupta-Mumick-Subrahmanian), with stratified negation handled in both
// directions (insertions into a negated predicate destroy derivations;
// deletions from one create them).
//
// This is the computation whose task graph the paper schedules: an update
// touches base predicates, the change cascades component by component down
// the dependency DAG, and a component whose inputs changed may or may not
// change its own output.  ComponentUpdateStats records exactly that —
// schedule_bridge.hpp turns a recorded update into a JobTrace.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <string>
#include <vector>

#include "datalog/eval.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"

namespace dsched::datalog {

class StoreWriteBuffer;

/// A batch of base-fact changes.
struct UpdateRequest {
  /// (predicate, tuple) pairs to add.  Already-present tuples are no-ops.
  std::vector<std::pair<std::uint32_t, Tuple>> insertions;
  /// (predicate, tuple) pairs to remove.  Absent tuples are no-ops.  A
  /// tuple still derivable by some rule is rederived, per DRed semantics.
  std::vector<std::pair<std::uint32_t, Tuple>> deletions;

  [[nodiscard]] bool Empty() const {
    return insertions.empty() && deletions.empty();
  }
};

/// What happened to one component during an update.
struct ComponentUpdateStats {
  std::uint32_t component = 0;
  /// Did any input (body predicate delta or base change to a member) touch
  /// this component?  — "activated" in the paper's model.
  bool input_changed = false;
  /// Did the component's own relations net-change? — "output changed".
  bool output_changed = false;
  std::size_t tuples_overdeleted = 0;
  std::size_t tuples_rederived = 0;
  std::size_t tuples_inserted = 0;  ///< net new tuples of member predicates
  std::size_t tuples_deleted = 0;   ///< net removed tuples
  // Maintenance-strategy effort (see maintenance.hpp).  maint_ops is the
  // uniform tuple-level operation count the strategies are compared on:
  // store mutations + derivability checks + recounts + backward probes of
  // the deletion pipeline.  Insertion-side work is excluded everywhere —
  // DRed's semi-naive continuation, counting's create-driven recounts and
  // births — so the metric compares what each strategy does about
  // deletions, the axis they actually differ on.
  std::size_t maint_ops = 0;
  std::size_t maint_recounts = 0;  ///< counting: destroy-driven recounts
  std::size_t maint_backward_probes = 0;  ///< B/F: aliveness probes
  std::size_t maint_avoided = 0;  ///< deletions DRed would do, skipped here
  double seconds = 0.0;           ///< wall time spent on this component
  EvalStats eval;
};

/// Result of one Apply().
struct UpdateResult {
  std::vector<ComponentUpdateStats> components;  ///< in evaluation order
  std::size_t total_inserted = 0;
  std::size_t total_deleted = 0;
  std::size_t total_maint_ops = 0;  ///< summed ComponentUpdateStats::maint_ops
  double seconds = 0.0;

  [[nodiscard]] std::string ToString(const Program& program,
                                     const Stratification& strat) const;
};

/// Net change to one predicate, finalized when its component's phase ends.
struct PredicateDelta {
  std::vector<Tuple> inserted;
  std::vector<Tuple> deleted;

  [[nodiscard]] bool Empty() const { return inserted.empty() && deleted.empty(); }
};

/// Base changes grouped per predicate (index = predicate id).
struct GroupedBaseChanges {
  std::vector<std::vector<Tuple>> insertions;
  std::vector<std::vector<Tuple>> deletions;

  GroupedBaseChanges() = default;
  GroupedBaseChanges(const Program& program, const UpdateRequest& request);
};

/// Read-only view of the PRE-update contents of the store, expressed as the
/// live store minus this update's insertions plus its deletions — so DRed's
/// overdeletion can join against the old state without snapshotting the
/// database (the deltas are small; the database is not).
///
/// Row-id space per predicate: ids without Relation::kExtraBit are live rows
/// (ids straight from the live store's indexes, so its caches are reused —
/// a live Relation never produces an id with bit 31 set), and ids with the
/// bit set address the "deleted extras" — tuples removed from the live store
/// that the old state still contains.  Member-phase deletions are appended
/// via AddDeletedExtra as the phase erases them.
///
/// Implements the same read interface as RelationStore (ContainsTuple /
/// RowAt / Lookup), which is what the join machinery is instantiated over.
class OldStateView {
 public:
  /// Snapshots the deltas of exactly `relevant` predicates (the phase's
  /// rule-body predicates and members).  Restricting the read set is what
  /// keeps the parallel engine race-free: net entries of incomparable
  /// components may be mid-write, but they are never relevant here.
  OldStateView(const RelationStore& live,
               const std::vector<PredicateDelta>& net,
               const std::vector<std::uint32_t>& relevant);

  /// Registers a tuple the current phase just erased from the live store.
  void AddDeletedExtra(std::uint32_t predicate, const Tuple& tuple);

  [[nodiscard]] bool ContainsTuple(std::uint32_t predicate,
                                   RowView tuple) const;
  [[nodiscard]] RowView RowAt(std::uint32_t predicate,
                              std::uint32_t row) const;
  [[nodiscard]] std::vector<std::uint32_t> Lookup(
      std::uint32_t predicate, const std::vector<std::size_t>& columns,
      const Tuple& key) const;

  /// Prepared-probe interface mirroring RelationStore's: a handle resolved
  /// once per rule application, probed per binding without re-resolving the
  /// live store's cache entry.  Unlike the live store's span-returning
  /// probe, results materialize a vector (live ids are filtered against the
  /// update's insertions and extras are appended) — acceptable because
  /// DRed's overdeletion runs over small deltas.
  struct PreparedIndex {
    std::uint32_t predicate = 0;
    const std::vector<std::size_t>* columns = nullptr;
    RelationStore::PreparedIndex live;
  };
  [[nodiscard]] PreparedIndex Prepare(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;
  [[nodiscard]] std::vector<std::uint32_t> LookupPrepared(
      const PreparedIndex& prepared, const Tuple& key) const;
  [[nodiscard]] RowView RowIn(const PreparedIndex& prepared,
                              std::uint32_t row) const {
    return RowAt(prepared.predicate, row);
  }

  // Join-planner statistics (uniform join-source interface).  Sizes count
  // the old state; fan-outs are approximated by the live store's indexes
  // (the deltas are small, so live fan-out is the right estimate).
  [[nodiscard]] std::size_t RelationSize(std::uint32_t predicate) const;
  [[nodiscard]] std::size_t IndexDistinct(
      std::uint32_t predicate, const std::vector<std::size_t>& columns) const;

 private:
  using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
  const RelationStore& live_;
  std::vector<TupleSet> inserted_;      ///< live-only tuples (not in old state)
  std::vector<std::vector<Tuple>> extras_;  ///< old-only tuples, id-addressable
  std::vector<TupleSet> extras_set_;
};

/// ApplyRule against the old state (defined alongside the join machinery in
/// eval.cpp; the template there is instantiated for both sources).
void ApplyRuleOldState(const Program& program, const OldStateView& old_state,
                       const Rule& rule, const DeltaRestriction& restriction,
                       EvalStats& stats,
                       const std::function<void(const Tuple&)>& emit);

/// True iff `component`'s inputs are touched by the given base changes or
/// lower-predicate net deltas — the "activated" test of the paper's model.
[[nodiscard]] bool ComponentInputTouched(const Program& program,
                                         const Stratification& strat,
                                         std::uint32_t component,
                                         const GroupedBaseChanges& base,
                                         const std::vector<PredicateDelta>& net);

/// Runs one component's full DRed phase: overdeletion against the old state
/// (an OldStateView built from `store` and `net`), rederivation,
/// negation-driven insertions, and the semi-naive insertion continuation —
/// then finalizes the member entries of `net`.
///
/// Thread compatibility (used by the parallel engine): writes only the
/// member relations of `component` in `store`, the member entries of
/// `net`, and the returned stats; reads lower predicates' relations and
/// `net` entries, which the caller must have finalized (the dependency
/// DAG's precedence).
///
/// `scratch`, when given, is the calling worker's write buffer: the phase
/// stages its base insertions through the lock-free shard-publication
/// protocol instead of direct Insert calls (see delta_buffer.hpp).  The
/// buffer must be owned by the calling thread; nullptr keeps the direct
/// path.
ComponentUpdateStats RunComponentPhase(const Program& program,
                                       const Stratification& strat,
                                       std::uint32_t component,
                                       RelationStore& store,
                                       const GroupedBaseChanges& base,
                                       std::vector<PredicateDelta>& net,
                                       StoreWriteBuffer* scratch = nullptr);

/// The core propagation loop shared by base-fact updates and rule changes:
/// runs the phase of every component that is touched (per
/// ComponentInputTouched) or force-listed, in evaluation order.
/// `force_touched`, when given, is indexed by component id — rule changes
/// use it to run the owning component even without input deltas.
UpdateResult PropagateUpdate(const Program& program,
                             const Stratification& strat, RelationStore& store,
                             const GroupedBaseChanges& base,
                             const std::vector<bool>* force_touched = nullptr);

/// Maintains one materialized store under updates.
class IncrementalEngine {
 public:
  /// The store must already be materialized (EvaluateProgram) and is
  /// mutated in place by Apply.  All references must outlive the engine.
  IncrementalEngine(const Program& program, const Stratification& strat,
                    RelationStore& store);

  /// Applies one batch incrementally.  Afterwards the store equals what a
  /// from-scratch evaluation over (base ∪ insertions ∖ deletions) produces
  /// — the property the tests verify.
  UpdateResult Apply(const UpdateRequest& request);

 private:
  const Program& program_;
  const Stratification& strat_;
  RelationStore& store_;
};

}  // namespace dsched::datalog
