// Stratification: predicate dependency analysis and stratum assignment.
//
// Build the predicate dependency graph (edge q → p when q appears in the
// body of a rule with head p; marked "negative" if under negation), find
// its strongly connected components (Tarjan), reject negative edges inside
// a component (unstratifiable), and order the condensation topologically.
// Each SCC is one evaluation unit — the fixpoint granule that later becomes
// a task node in the scheduling DAG.
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.hpp"

namespace dsched::datalog {

/// Result of stratifying one program.
struct Stratification {
  /// Component id per predicate (dense, 0-based).
  std::vector<std::uint32_t> component_of;
  /// Predicates per component.
  std::vector<std::vector<std::uint32_t>> component_members;
  /// Components in evaluation order (every dependency precedes its users).
  std::vector<std::uint32_t> component_order;
  /// Rule indices whose head lies in each component.
  std::vector<std::vector<std::size_t>> component_rules;
  /// True when some rule in the component depends on a predicate of the
  /// same component (a genuine fixpoint is needed).
  std::vector<bool> component_recursive;
  /// Stratum number per component (max over dependencies, +1 on negation).
  std::vector<std::uint32_t> component_stratum;

  [[nodiscard]] std::size_t NumComponents() const {
    return component_members.size();
  }
};

/// Computes the stratification; throws util::InvalidArgument when the
/// program uses negation through recursion (unstratifiable).
[[nodiscard]] Stratification Stratify(const Program& program);

}  // namespace dsched::datalog
