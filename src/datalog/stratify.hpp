// Stratification: predicate dependency analysis and stratum assignment.
//
// Build the predicate dependency graph (edge q → p when q appears in the
// body of a rule with head p; marked "negative" if under negation), find
// its strongly connected components (Tarjan), reject negative edges inside
// a component (unstratifiable), and order the condensation topologically.
// Each SCC is one evaluation unit — the fixpoint granule that later becomes
// a task node in the scheduling DAG.
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.hpp"

namespace dsched::datalog {

/// Result of stratifying one program.
struct Stratification {
  /// Component id per predicate (dense, 0-based).
  std::vector<std::uint32_t> component_of;
  /// Predicates per component.
  std::vector<std::vector<std::uint32_t>> component_members;
  /// Components in evaluation order (every dependency precedes its users).
  std::vector<std::uint32_t> component_order;
  /// Rule indices whose head lies in each component.
  std::vector<std::vector<std::size_t>> component_rules;
  /// True when some rule in the component depends on a predicate of the
  /// same component (a genuine fixpoint is needed).
  std::vector<bool> component_recursive;
  /// Stratum number per component (max over dependencies, +1 on negation).
  std::vector<std::uint32_t> component_stratum;

  [[nodiscard]] std::size_t NumComponents() const {
    return component_members.size();
  }
};

/// Computes the stratification; throws util::InvalidArgument when the
/// program uses negation through recursion (unstratifiable).
[[nodiscard]] Stratification Stratify(const Program& program);

/// Work accounting for one incremental re-stratification.
struct RestratifyStats {
  /// Predicates whose derivations can change (the affected cone).
  std::size_t cone_predicates = 0;
  /// Components produced by running Tarjan over the cone subgraph.
  std::size_t cone_components = 0;
  /// Old components carried over verbatim (membership untouched).
  std::size_t reused_components = 0;
};

/// Re-stratifies after a rule-set edit without re-running SCC detection on
/// the whole dependency graph.  `changed_heads` lists the head predicates of
/// every added/removed rule; predicates with id >= `old_num_predicates` are
/// the ones the edit introduced.  The affected cone is the downstream
/// closure of those seeds in the NEW dependency graph; Tarjan runs only on
/// the cone-induced subgraph while every component fully outside the cone is
/// reused from `old` (a rule edit can only create or break cycles through a
/// changed head, and the cone is downstream-closed, so no surviving SCC can
/// straddle the boundary).  The condensation order, strata, and per-
/// component rule lists are rebuilt globally (linear passes).  On return
/// `*affected_out` (when non-null) holds the cone membership bitmap and
/// `*stats` (when non-null) the reuse accounting.  Throws
/// util::InvalidArgument when the edited program is unstratifiable.
[[nodiscard]] Stratification RestratifyAffected(
    const Program& program, const Stratification& old,
    std::size_t old_num_predicates,
    const std::vector<std::uint32_t>& changed_heads,
    std::vector<bool>* affected_out = nullptr,
    RestratifyStats* stats = nullptr);

}  // namespace dsched::datalog
