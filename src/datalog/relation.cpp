#include "datalog/relation.hpp"

#include <mutex>

#include "util/error.hpp"

namespace dsched::datalog {

bool Relation::Insert(const Tuple& tuple) {
  DSCHED_CHECK_MSG(tuple.size() == arity_, "tuple arity mismatch");
  const auto [it, inserted] =
      index_.emplace(tuple, static_cast<std::uint32_t>(rows_.size()));
  if (!inserted) {
    return false;
  }
  rows_.push_back(tuple);
  ++version_;
  return true;
}

bool Relation::Erase(const Tuple& tuple) {
  const auto it = index_.find(tuple);
  if (it == index_.end()) {
    return false;
  }
  const std::uint32_t row = it->second;
  index_.erase(it);
  const std::uint32_t last = static_cast<std::uint32_t>(rows_.size()) - 1;
  if (row != last) {
    rows_[row] = std::move(rows_[last]);
    index_[rows_[row]] = row;
  }
  rows_.pop_back();
  ++version_;
  ++erase_epoch_;
  return true;
}

std::size_t Relation::MemoryBytes() const {
  std::size_t bytes = rows_.capacity() * sizeof(Tuple);
  for (const Tuple& t : rows_) {
    bytes += t.capacity() * sizeof(Value);
  }
  // Rough hash-map overhead: key copy + bucket bookkeeping.
  bytes += index_.size() * (sizeof(Tuple) + arity_ * sizeof(Value) + 24);
  return bytes;
}

RelationStore::RelationStore(const Program& program) {
  relations_.reserve(program.NumPredicates());
  for (std::size_t p = 0; p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p]);
  }
  ResetCacheShards();
}

void RelationStore::EnsurePredicates(const Program& program) {
  DSCHED_CHECK_MSG(program.NumPredicates() >= relations_.size(),
                   "program lost predicates");
  for (std::size_t p = relations_.size(); p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p]);
    cache_shards_.push_back(std::make_unique<CacheShard>());
  }
}

void RelationStore::ResetCacheShards() {
  cache_shards_.clear();
  cache_shards_.reserve(relations_.size());
  for (std::size_t p = 0; p < relations_.size(); ++p) {
    cache_shards_.push_back(std::make_unique<CacheShard>());
  }
}

Relation& RelationStore::Of(std::uint32_t predicate) {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

const Relation& RelationStore::Of(std::uint32_t predicate) const {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

std::size_t RelationStore::TotalTuples() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) {
    total += r.Size();
  }
  return total;
}

void RelationStore::RefreshIndex(CachedIndex& cached, const Relation& relation,
                                 const std::vector<std::size_t>& columns) {
  const auto rows = relation.Rows();
  if (cached.erase_epoch != relation.EraseEpoch() ||
      cached.rows_indexed > rows.size()) {
    // Erasures invalidate row ids: full rebuild.
    cached.map.clear();
    cached.rows_indexed = 0;
    cached.erase_epoch = relation.EraseEpoch();
  }
  // Append-only fast path: index just the new rows.  This is the
  // semi-naive hot path — fixpoint rounds insert small deltas between
  // lookups, and an O(Δ) extension beats an O(|R|) rebuild per round.
  Tuple probe(columns.size());
  for (std::size_t row = cached.rows_indexed; row < rows.size(); ++row) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      probe[i] = rows[row][columns[i]];
    }
    cached.map[probe].push_back(static_cast<std::uint32_t>(row));
  }
  cached.rows_indexed = rows.size();
  cached.version = relation.Version();
}

std::span<const std::uint32_t> RelationStore::Lookup(
    std::uint32_t predicate, const std::vector<std::size_t>& columns,
    const Tuple& key) const {
  static const std::vector<std::uint32_t> kEmpty;
  const Relation& relation = Of(predicate);
  std::uint64_t mask = 0;
  for (const std::size_t c : columns) {
    DSCHED_CHECK_MSG(c < relation.Arity(), "index column out of range");
    mask |= (std::uint64_t{1} << c);
  }
  CacheShard& shard = *cache_shards_[predicate];
  // Read-mostly fast path: a fresh entry only needs the shared lock, so
  // concurrent phases probing the same predicate proceed in parallel.  The
  // returned span stays valid after release — see the class comment.
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto entry = shard.entries.find(mask);
    if (entry != shard.entries.end() &&
        entry->second.version == relation.Version()) {
      const auto it = entry->second.map.find(key);
      return it == entry->second.map.end()
                 ? std::span<const std::uint32_t>(kEmpty)
                 : std::span<const std::uint32_t>(it->second);
    }
  }
  // Stale or missing: take the exclusive lock and recheck (another phase
  // may have refreshed the entry while we waited).
  const std::unique_lock<std::shared_mutex> lock(shard.mutex);
  CachedIndex& cached = shard.entries[mask];
  if (cached.version != relation.Version()) {
    RefreshIndex(cached, relation, columns);
  }
  const auto it = cached.map.find(key);
  return it == cached.map.end() ? std::span<const std::uint32_t>(kEmpty)
                                : std::span<const std::uint32_t>(it->second);
}

std::size_t RelationStore::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const Relation& r : relations_) {
    bytes += r.MemoryBytes();
  }
  for (const auto& shard : cache_shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [key, cached] : shard->entries) {
      (void)key;
      bytes += cached.map.size() * 48;
      for (const auto& [k, rows] : cached.map) {
        bytes += k.capacity() * sizeof(Value) +
                 rows.capacity() * sizeof(std::uint32_t);
      }
    }
  }
  return bytes;
}

}  // namespace dsched::datalog
