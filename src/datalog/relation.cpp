#include "datalog/relation.hpp"

#include <algorithm>
#include <array>
#include <mutex>

#include "util/error.hpp"

namespace dsched::datalog {

namespace {

/// Open-addressing tables grow past 7/8 full (power-of-two capacities keep
/// the probe mask a single AND).
constexpr std::size_t kMinSlots = 16;

[[nodiscard]] bool NeedsGrow(std::size_t entries, std::size_t capacity) {
  return (entries + 1) * 8 > capacity * 7;
}

[[nodiscard]] std::size_t SlotCapacityFor(std::size_t entries) {
  std::size_t capacity = kMinSlots;
  while (NeedsGrow(entries, capacity)) {
    capacity *= 2;
  }
  return capacity;
}

/// Slot word layout shared by the membership table and cached indexes:
/// high 32 bits carry a hash tag, low 32 bits the payload id + 1 (0 =
/// empty slot).  The tag filters mismatches from the slot word alone —
/// no per-entry memory is touched until the tag agrees.
constexpr std::uint64_t kTagMask = 0xffffffff00000000ULL;
constexpr std::uint64_t kIdMask = 0x00000000ffffffffULL;

[[nodiscard]] std::uint64_t SlotWord(std::uint64_t hash, std::uint32_t id) {
  return (hash & kTagMask) | (std::uint64_t{id} + 1);
}

/// Hash of `row` restricted to `columns`, equal by construction to
/// HashValues over the gathered key tuple (lookups hash flat keys).
[[nodiscard]] std::uint64_t HashRowColumns(
    RowView row, const std::vector<std::size_t>& columns) {
  std::array<Value, 32> scratch;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    scratch[i] = row[columns[i]];
  }
  return HashValues({scratch.data(), columns.size()});
}

[[nodiscard]] bool RowColumnsEqual(RowView row,
                                   const std::vector<std::size_t>& columns,
                                   RowView key) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (!(row[columns[i]] == key[i])) {
      return false;
    }
  }
  return true;
}

/// Row-to-row variant: both sides are full rows; compare the indexed
/// columns in place.
[[nodiscard]] bool RowColumnsSame(RowView a, RowView b,
                                  const std::vector<std::size_t>& columns) {
  for (const std::size_t c : columns) {
    if (!(a[c] == b[c])) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Tuple> Relation::Tuples() const {
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (std::uint32_t r = 0; r < num_rows_; ++r) {
    const RowView row = Row(r);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

std::size_t Relation::FindSlot(RowView tuple, std::uint64_t hash) const {
  const std::size_t mask = slots_.size() - 1;
  const std::uint64_t tag = hash & kTagMask;
  std::size_t slot = hash & mask;
  while (slots_[slot] != 0) {
    if ((slots_[slot] & kTagMask) == tag) {
      const auto row = static_cast<std::uint32_t>((slots_[slot] & kIdMask) - 1);
      if (std::equal(tuple.begin(), tuple.end(),
                     arena_.data() + std::size_t{row} * arity_)) {
        return slot;
      }
    }
    slot = (slot + 1) & mask;
  }
  return kNoSlot;
}

void Relation::Rehash(std::size_t capacity) {
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::uint32_t row = 0; row < num_rows_; ++row) {
    std::size_t slot = hashes_[row] & mask;
    while (slots_[slot] != 0) {
      slot = (slot + 1) & mask;
    }
    slots_[slot] = SlotWord(hashes_[row], row);
  }
}

bool Relation::Contains(RowView tuple) const {
  if (num_rows_ == 0 || tuple.size() != arity_) {
    return false;
  }
  return FindSlot(tuple, HashValues(tuple)) != kNoSlot;
}

bool Relation::Insert(RowView tuple) {
  DSCHED_CHECK_MSG(tuple.size() == arity_, "tuple arity mismatch");
  if (slots_.empty()) {
    slots_.assign(kMinSlots, 0);
  }
  const std::uint64_t hash = HashValues(tuple);
  if (FindSlot(tuple, hash) != kNoSlot) {
    return false;
  }
  if (NeedsGrow(num_rows_, slots_.size())) {
    Rehash(slots_.size() * 2);
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = hash & mask;
  while (slots_[slot] != 0) {
    slot = (slot + 1) & mask;
  }
  slots_[slot] = SlotWord(hash, static_cast<std::uint32_t>(num_rows_));
  arena_.insert(arena_.end(), tuple.begin(), tuple.end());
  hashes_.push_back(hash);
  ++num_rows_;
  ++version_;
  return true;
}

bool Relation::Erase(RowView tuple) {
  if (num_rows_ == 0 || tuple.size() != arity_) {
    return false;
  }
  const std::size_t slot = FindSlot(tuple, HashValues(tuple));
  if (slot == kNoSlot) {
    return false;
  }
  const auto row = static_cast<std::uint32_t>((slots_[slot] & kIdMask) - 1);

  // Backward-shift deletion: pull displaced entries toward their ideal
  // slots so every remaining entry stays reachable without tombstones.
  const std::size_t mask = slots_.size() - 1;
  std::size_t hole = slot;
  std::size_t scan = slot;
  while (true) {
    scan = (scan + 1) & mask;
    if (slots_[scan] == 0) {
      break;
    }
    const std::size_t ideal = hashes_[(slots_[scan] & kIdMask) - 1] & mask;
    const bool movable = (scan > hole) ? (ideal <= hole || ideal > scan)
                                       : (ideal <= hole && ideal > scan);
    if (movable) {
      slots_[hole] = slots_[scan];
      hole = scan;
    }
  }
  slots_[hole] = 0;

  // Swap-removal in the arena; the moved row keeps its hash, its table
  // entry is repointed at its new id.
  const std::uint32_t last = static_cast<std::uint32_t>(num_rows_) - 1;
  if (row != last) {
    std::copy_n(arena_.data() + std::size_t{last} * arity_, arity_,
                arena_.data() + std::size_t{row} * arity_);
    hashes_[row] = hashes_[last];
    std::size_t s = hashes_[last] & mask;
    while ((slots_[s] & kIdMask) != std::uint64_t{last} + 1) {
      s = (s + 1) & mask;
    }
    slots_[s] = SlotWord(hashes_[last], row);
  }
  arena_.resize(std::size_t{last} * arity_);
  hashes_.pop_back();
  num_rows_ = last;
  ++version_;
  ++erase_epoch_;
  return true;
}

void Relation::Reserve(std::size_t rows) {
  // Keep amortized growth: a reserve that barely exceeds the current
  // capacity must not pin the vector to exact-size reallocations.
  if (rows * arity_ > arena_.capacity()) {
    arena_.reserve(std::max(rows * arity_, arena_.capacity() * 2));
  }
  if (rows > hashes_.capacity()) {
    hashes_.reserve(std::max(rows, hashes_.capacity() * 2));
  }
  const std::size_t capacity = SlotCapacityFor(rows);
  if (capacity > slots_.size()) {
    Rehash(capacity);
  }
}

std::size_t Relation::MemoryBytes() const {
  return arena_.capacity() * sizeof(Value) +
         hashes_.capacity() * sizeof(std::uint64_t) +
         slots_.capacity() * sizeof(std::uint64_t);
}

RelationStore::RelationStore(const Program& program) {
  relations_.reserve(program.NumPredicates());
  for (std::size_t p = 0; p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p]);
  }
  ResetCacheShards();
}

void RelationStore::EnsurePredicates(const Program& program) {
  DSCHED_CHECK_MSG(program.NumPredicates() >= relations_.size(),
                   "program lost predicates");
  for (std::size_t p = relations_.size(); p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p]);
    cache_shards_.push_back(std::make_unique<CacheShard>());
  }
}

void RelationStore::ResetCacheShards() {
  cache_shards_.clear();
  cache_shards_.reserve(relations_.size());
  for (std::size_t p = 0; p < relations_.size(); ++p) {
    cache_shards_.push_back(std::make_unique<CacheShard>());
  }
}

Relation& RelationStore::Of(std::uint32_t predicate) {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

const Relation& RelationStore::Of(std::uint32_t predicate) const {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

std::size_t RelationStore::TotalTuples() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) {
    total += r.Size();
  }
  return total;
}

void RelationStore::RefreshIndex(CachedIndex& cached, const Relation& relation,
                                 const std::vector<std::size_t>& columns) {
  if (cached.erase_epoch != relation.EraseEpoch() ||
      cached.rows_indexed > relation.Size()) {
    // Erasures invalidate row ids: full rebuild.
    cached.slots.clear();
    cached.groups.clear();
    cached.rows_indexed = 0;
    cached.erase_epoch = relation.EraseEpoch();
  }
  // Append-only fast path: index just the new rows.  This is the
  // semi-naive hot path — fixpoint rounds insert small deltas between
  // lookups, and an O(Δ) extension beats an O(|R|) rebuild per round.
  const std::size_t new_rows = relation.Size() - cached.rows_indexed;
  const std::size_t capacity =
      SlotCapacityFor(cached.groups.size() + new_rows);
  if (capacity > cached.slots.size()) {
    cached.slots.assign(capacity, 0);
    const std::size_t mask = capacity - 1;
    for (std::uint32_t g = 0; g < cached.groups.size(); ++g) {
      std::size_t slot = cached.groups[g].hash & mask;
      while (cached.slots[slot] != 0) {
        slot = (slot + 1) & mask;
      }
      cached.slots[slot] = SlotWord(cached.groups[g].hash, g);
    }
  }
  cached.groups.reserve(cached.groups.size() + new_rows);
  const std::size_t mask = cached.slots.size() - 1;
  for (std::size_t row = cached.rows_indexed; row < relation.Size(); ++row) {
    const RowView row_view = relation.Row(static_cast<std::uint32_t>(row));
    const std::uint64_t hash = HashRowColumns(row_view, columns);
    const std::uint64_t tag = hash & kTagMask;
    std::size_t slot = hash & mask;
    bool appended = false;
    while (cached.slots[slot] != 0) {
      if ((cached.slots[slot] & kTagMask) == tag) {
        CachedIndex::Group& group =
            cached.groups[(cached.slots[slot] & kIdMask) - 1];
        if (group.hash == hash &&
            RowColumnsSame(row_view, relation.Row(group.rep), columns)) {
          // Same key as the group's representative row: append.
          group.rows.push_back(static_cast<std::uint32_t>(row));
          appended = true;
          break;
        }
      }
      slot = (slot + 1) & mask;
    }
    if (!appended) {
      CachedIndex::Group group;
      group.hash = hash;
      group.rep = static_cast<std::uint32_t>(row);
      group.rows.push_back(static_cast<std::uint32_t>(row));
      cached.groups.push_back(std::move(group));
      cached.slots[slot] = SlotWord(
          hash, static_cast<std::uint32_t>(cached.groups.size() - 1));
    }
  }
  cached.rows_indexed = relation.Size();
  cached.version = relation.Version();
}

const RelationStore::CachedIndex::Group* RelationStore::FindGroup(
    const CachedIndex& cached, const Relation& relation,
    const std::vector<std::size_t>& columns, RowView key,
    std::uint64_t hash) {
  if (cached.slots.empty()) {
    return nullptr;
  }
  const std::size_t mask = cached.slots.size() - 1;
  const std::uint64_t tag = hash & kTagMask;
  std::size_t slot = hash & mask;
  while (cached.slots[slot] != 0) {
    if ((cached.slots[slot] & kTagMask) == tag) {
      const CachedIndex::Group& group =
          cached.groups[(cached.slots[slot] & kIdMask) - 1];
      if (RowColumnsEqual(relation.Row(group.rep), columns, key)) {
        return &group;
      }
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

RelationStore::PreparedIndex RelationStore::Prepare(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  const Relation& relation = Of(predicate);
  std::uint64_t mask = 0;
  for (const std::size_t c : columns) {
    DSCHED_CHECK_MSG(c < relation.Arity(), "index column out of range");
    mask |= (std::uint64_t{1} << c);
  }
  CacheShard& shard = *cache_shards_[predicate];
  // Read-mostly fast path: a fresh entry only needs the shared lock, so
  // concurrent phases probing the same predicate proceed in parallel.  The
  // handle stays valid after release — see the class comment.
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto entry = shard.entries.find(mask);
    if (entry != shard.entries.end() &&
        entry->second->version == relation.Version()) {
      return {entry->second.get(), &relation, &columns};
    }
  }
  // Stale or missing: take the exclusive lock and recheck (another phase
  // may have refreshed the entry while we waited).
  const std::unique_lock<std::shared_mutex> lock(shard.mutex);
  std::unique_ptr<CachedIndex>& cached = shard.entries[mask];
  if (cached == nullptr) {
    cached = std::make_unique<CachedIndex>();
  }
  if (cached->version != relation.Version()) {
    RefreshIndex(*cached, relation, columns);
  }
  return {cached.get(), &relation, &columns};
}

std::span<const std::uint32_t> RelationStore::Lookup(
    std::uint32_t predicate, const std::vector<std::size_t>& columns,
    const Tuple& key) const {
  return LookupPrepared(Prepare(predicate, columns), key);
}

std::size_t RelationStore::IndexDistinct(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  const Relation& relation = Of(predicate);
  std::uint64_t mask = 0;
  for (const std::size_t c : columns) {
    mask |= (std::uint64_t{1} << c);
  }
  CacheShard& shard = *cache_shards_[predicate];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const auto entry = shard.entries.find(mask);
  if (entry == shard.entries.end() ||
      entry->second->version != relation.Version()) {
    return 0;
  }
  return entry->second->groups.size();
}

std::size_t RelationStore::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const Relation& r : relations_) {
    bytes += r.MemoryBytes();
  }
  for (const auto& shard : cache_shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [key, cached] : shard->entries) {
      (void)key;
      bytes += cached->slots.capacity() * sizeof(std::uint64_t) +
               cached->groups.capacity() * sizeof(CachedIndex::Group);
      for (const auto& group : cached->groups) {
        bytes += group.rows.capacity() * sizeof(std::uint32_t);
      }
    }
  }
  return bytes;
}

}  // namespace dsched::datalog
