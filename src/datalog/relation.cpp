#include "datalog/relation.hpp"

#include <algorithm>
#include <array>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::datalog {

namespace {

/// Open-addressing tables grow past 7/8 full (power-of-two capacities keep
/// the probe mask a single AND).
constexpr std::size_t kMinSlots = 16;

[[nodiscard]] bool NeedsGrow(std::size_t entries, std::size_t capacity) {
  return (entries + 1) * 8 > capacity * 7;
}

[[nodiscard]] std::size_t SlotCapacityFor(std::size_t entries) {
  std::size_t capacity = kMinSlots;
  while (NeedsGrow(entries, capacity)) {
    capacity *= 2;
  }
  return capacity;
}

[[nodiscard]] std::size_t RoundUpPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p *= 2;
  }
  return p;
}

/// Slot word layout shared by the membership table and cached indexes:
/// high 32 bits carry a hash tag, low 32 bits the payload id + 1 (0 =
/// empty slot).  The tag filters mismatches from the slot word alone —
/// no per-entry memory is touched until the tag agrees.
constexpr std::uint64_t kTagMask = 0xffffffff00000000ULL;
constexpr std::uint64_t kIdMask = 0x00000000ffffffffULL;

[[nodiscard]] std::uint64_t SlotWord(std::uint64_t hash, std::uint32_t id) {
  return (hash & kTagMask) | (std::uint64_t{id} + 1);
}

/// Hash of `row` restricted to `columns`, equal by construction to
/// HashValues over the gathered key tuple (lookups hash flat keys).
[[nodiscard]] std::uint64_t HashRowColumns(
    RowView row, const std::vector<std::size_t>& columns) {
  std::array<Value, 32> scratch;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    scratch[i] = row[columns[i]];
  }
  return HashValues({scratch.data(), columns.size()});
}

[[nodiscard]] bool RowColumnsEqual(RowView row,
                                   const std::vector<std::size_t>& columns,
                                   RowView key) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (!(row[columns[i]] == key[i])) {
      return false;
    }
  }
  return true;
}

/// Row-to-row variant: both sides are full rows; compare the indexed
/// columns in place.
[[nodiscard]] bool RowColumnsSame(RowView a, RowView b,
                                  const std::vector<std::size_t>& columns) {
  for (const std::size_t c : columns) {
    if (!(a[c] == b[c])) {
      return false;
    }
  }
  return true;
}

}  // namespace

// --- Relation: construction & copies ---------------------------------------

Relation::Relation(std::size_t arity, std::size_t shards) : arity_(arity) {
  InitShards(shards);
}

void Relation::InitShards(std::size_t shards) {
  num_shards_ = RoundUpPowerOfTwo(std::max<std::size_t>(shards, 1));
  shard_bits_ = 0;
  while ((std::size_t{1} << shard_bits_) < num_shards_) {
    ++shard_bits_;
  }
  shard_mask_ = num_shards_ - 1;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

void Relation::CopyFrom(const Relation& other) {
  DSCHED_CHECK_MSG(!other.HasPending(),
                   "copying a relation with unapplied delta chunks");
  arity_ = other.arity_;
  InitShards(other.num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& dst = shards_[s];
    const Shard& src = other.shards_[s];
    dst.arena = src.arena;
    dst.hashes = src.hashes;
    dst.counts = src.counts;
    dst.slots = src.slots;
    dst.num_rows.store(src.num_rows.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    dst.version.store(src.version.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    dst.erase_epoch.store(src.erase_epoch.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    dst.applied_epoch.store(src.applied_epoch.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  }
  publish_chunks_.store(other.publish_chunks_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  publish_rows_.store(other.publish_rows_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  absorb_runs_.store(other.absorb_runs_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  absorb_waits_.store(other.absorb_waits_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

Relation::Relation(const Relation& other) { CopyFrom(other); }

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    CopyFrom(other);
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      num_shards_(other.num_shards_),
      shard_bits_(other.shard_bits_),
      shard_mask_(other.shard_mask_),
      shards_(std::move(other.shards_)) {
  publish_chunks_.store(other.publish_chunks_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  publish_rows_.store(other.publish_rows_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  absorb_runs_.store(other.absorb_runs_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  absorb_waits_.store(other.absorb_waits_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  other.InitShards(1);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    num_shards_ = other.num_shards_;
    shard_bits_ = other.shard_bits_;
    shard_mask_ = other.shard_mask_;
    shards_ = std::move(other.shards_);
    publish_chunks_.store(
        other.publish_chunks_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    publish_rows_.store(other.publish_rows_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    absorb_runs_.store(other.absorb_runs_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    absorb_waits_.store(other.absorb_waits_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    other.InitShards(1);
  }
  return *this;
}

// --- Relation: reads --------------------------------------------------------

std::size_t Relation::Size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].num_rows.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Relation::Version() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].version.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Relation::EraseEpoch() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].erase_epoch.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Tuple> Relation::Tuples() const {
  std::vector<Tuple> out;
  out.reserve(Size());
  ForEachRow([&out](std::uint32_t, RowView row) {
    out.emplace_back(row.begin(), row.end());
  });
  return out;
}

std::size_t Relation::FindSlotLocal(const Shard& shard, RowView tuple,
                                    std::uint64_t hash) const {
  if (shard.slots.empty()) {
    return kNoSlot;
  }
  const std::size_t mask = shard.slots.size() - 1;
  const std::uint64_t tag = hash & kTagMask;
  std::size_t slot = hash & mask;
  while (shard.slots[slot] != 0) {
    if ((shard.slots[slot] & kTagMask) == tag) {
      const auto local =
          static_cast<std::uint32_t>((shard.slots[slot] & kIdMask) - 1);
      if (std::equal(tuple.begin(), tuple.end(),
                     shard.arena.data() + std::size_t{local} * arity_)) {
        return slot;
      }
    }
    slot = (slot + 1) & mask;
  }
  return kNoSlot;
}

bool Relation::Contains(RowView tuple) const {
  if (tuple.size() != arity_) {
    return false;
  }
  const std::uint64_t hash = HashValues(tuple);
  const Shard& shard = shards_[ShardOfHash(hash)];
  if (shard.num_rows.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return FindSlotLocal(shard, tuple, hash) != kNoSlot;
}

// --- Relation: single-owner mutation ---------------------------------------

void Relation::RehashShard(Shard& shard, std::size_t capacity) {
  shard.slots.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  const std::uint32_t rows = shard.num_rows.load(std::memory_order_relaxed);
  for (std::uint32_t local = 0; local < rows; ++local) {
    std::size_t slot = shard.hashes[local] & mask;
    while (shard.slots[slot] != 0) {
      slot = (slot + 1) & mask;
    }
    shard.slots[slot] = SlotWord(shard.hashes[local], local);
  }
}

bool Relation::InsertLocal(Shard& shard, RowView tuple, std::uint64_t hash) {
  if (shard.slots.empty()) {
    shard.slots.assign(kMinSlots, 0);
  }
  if (FindSlotLocal(shard, tuple, hash) != kNoSlot) {
    return false;
  }
  const std::uint32_t rows = shard.num_rows.load(std::memory_order_relaxed);
  DSCHED_CHECK_MSG(rows < (kExtraBit >> shard_bits_),
                   "relation shard row capacity exceeded");
  if (NeedsGrow(rows, shard.slots.size())) {
    RehashShard(shard, shard.slots.size() * 2);
  }
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t slot = hash & mask;
  while (shard.slots[slot] != 0) {
    slot = (slot + 1) & mask;
  }
  shard.slots[slot] = SlotWord(hash, rows);
  shard.arena.insert(shard.arena.end(), tuple.begin(), tuple.end());
  shard.hashes.push_back(hash);
  shard.counts.push_back(1);
  shard.num_rows.store(rows + 1, std::memory_order_relaxed);
  shard.version.store(shard.version.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  return true;
}

bool Relation::EraseLocal(Shard& shard, RowView tuple, std::uint64_t hash) {
  const std::uint32_t rows = shard.num_rows.load(std::memory_order_relaxed);
  if (rows == 0) {
    return false;
  }
  const std::size_t slot = FindSlotLocal(shard, tuple, hash);
  if (slot == kNoSlot) {
    return false;
  }
  const auto local =
      static_cast<std::uint32_t>((shard.slots[slot] & kIdMask) - 1);

  // Backward-shift deletion: pull displaced entries toward their ideal
  // slots so every remaining entry stays reachable without tombstones.
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t hole = slot;
  std::size_t scan = slot;
  while (true) {
    scan = (scan + 1) & mask;
    if (shard.slots[scan] == 0) {
      break;
    }
    const std::size_t ideal =
        shard.hashes[(shard.slots[scan] & kIdMask) - 1] & mask;
    const bool movable = (scan > hole) ? (ideal <= hole || ideal > scan)
                                       : (ideal <= hole && ideal > scan);
    if (movable) {
      shard.slots[hole] = shard.slots[scan];
      hole = scan;
    }
  }
  shard.slots[hole] = 0;

  // Swap-removal in the arena; the moved row keeps its hash, its table
  // entry is repointed at its new local id.
  const std::uint32_t last = rows - 1;
  if (local != last) {
    std::copy_n(shard.arena.data() + std::size_t{last} * arity_, arity_,
                shard.arena.data() + std::size_t{local} * arity_);
    shard.hashes[local] = shard.hashes[last];
    shard.counts[local] = shard.counts[last];
    std::size_t s = shard.hashes[last] & mask;
    while ((shard.slots[s] & kIdMask) != std::uint64_t{last} + 1) {
      s = (s + 1) & mask;
    }
    shard.slots[s] = SlotWord(shard.hashes[last], local);
  }
  shard.arena.resize(std::size_t{last} * arity_);
  shard.hashes.pop_back();
  shard.counts.pop_back();
  shard.num_rows.store(last, std::memory_order_relaxed);
  shard.version.store(shard.version.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  shard.erase_epoch.store(
      shard.erase_epoch.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return true;
}

std::uint8_t Relation::AdjustLocal(Shard& shard, RowView tuple,
                                   std::uint64_t hash, std::int32_t delta) {
  const std::size_t slot = FindSlotLocal(shard, tuple, hash);
  if (slot == kNoSlot) {
    if (delta <= 0) {
      return kNoChange;
    }
    InsertLocal(shard, tuple, hash);
    shard.counts.back() = static_cast<std::uint32_t>(delta);
    return kBorn;
  }
  const auto local =
      static_cast<std::uint32_t>((shard.slots[slot] & kIdMask) - 1);
  const auto count = static_cast<std::int64_t>(shard.counts[local]) + delta;
  if (count <= 0) {
    EraseLocal(shard, tuple, hash);
    return kDied;
  }
  shard.counts[local] = static_cast<std::uint32_t>(count);
  return kChanged;
}

std::uint32_t Relation::CountOf(RowView tuple) const {
  if (tuple.size() != arity_) {
    return 0;
  }
  const std::uint64_t hash = HashValues(tuple);
  const Shard& shard = shards_[ShardOfHash(hash)];
  const std::size_t slot = FindSlotLocal(shard, tuple, hash);
  if (slot == kNoSlot) {
    return 0;
  }
  return shard.counts[(shard.slots[slot] & kIdMask) - 1];
}

std::uint8_t Relation::AdjustCount(RowView tuple, std::int32_t delta) {
  DSCHED_CHECK_MSG(tuple.size() == arity_, "tuple arity mismatch");
  const std::uint64_t hash = HashValues(tuple);
  return AdjustLocal(shards_[ShardOfHash(hash)], tuple, hash, delta);
}

bool Relation::Insert(RowView tuple) {
  DSCHED_CHECK_MSG(tuple.size() == arity_, "tuple arity mismatch");
  const std::uint64_t hash = HashValues(tuple);
  return InsertLocal(shards_[ShardOfHash(hash)], tuple, hash);
}

bool Relation::Erase(RowView tuple) {
  if (tuple.size() != arity_) {
    return false;
  }
  const std::uint64_t hash = HashValues(tuple);
  return EraseLocal(shards_[ShardOfHash(hash)], tuple, hash);
}

void Relation::Reserve(std::size_t rows) {
  const std::size_t per_shard = (rows + num_shards_ - 1) / num_shards_;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    // Keep amortized growth: a reserve that barely exceeds the current
    // capacity must not pin the vector to exact-size reallocations.
    if (per_shard * arity_ > shard.arena.capacity()) {
      shard.arena.reserve(
          std::max(per_shard * arity_, shard.arena.capacity() * 2));
    }
    if (per_shard > shard.hashes.capacity()) {
      shard.hashes.reserve(std::max(per_shard, shard.hashes.capacity() * 2));
      shard.counts.reserve(std::max(per_shard, shard.counts.capacity() * 2));
    }
    const std::size_t capacity = SlotCapacityFor(per_shard);
    if (capacity > shard.slots.size()) {
      RehashShard(shard, capacity);
    }
  }
}

std::size_t Relation::MemoryBytes() const {
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    bytes += shard.arena.capacity() * sizeof(Value) +
             shard.hashes.capacity() * sizeof(std::uint64_t) +
             shard.counts.capacity() * sizeof(std::uint32_t) +
             shard.slots.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

// --- Relation: delta publication -------------------------------------------

void Relation::Publish(std::size_t shard_index, DeltaChunk* chunk) {
  DSCHED_CHECK_MSG(chunk->values.size() == chunk->Count() * arity_ &&
                       chunk->ops.size() == chunk->Count() &&
                       (chunk->deltas.empty() ||
                        chunk->deltas.size() == chunk->Count()),
                   "malformed delta chunk");
  chunk->applied.store(false, std::memory_order_relaxed);
  publish_chunks_.fetch_add(1, std::memory_order_relaxed);
  publish_rows_.fetch_add(chunk->Count(), std::memory_order_relaxed);
  OBS_COUNTER(Category::kStorePublish, chunk->Count());
  Shard& shard = shards_[shard_index];
  DeltaChunk* head = shard.pending.load(std::memory_order_relaxed);
  do {
    chunk->next = head;
  } while (!shard.pending.compare_exchange_weak(head, chunk,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
}

void Relation::ApplyChunk(Shard& shard, DeltaChunk& chunk) {
  const std::size_t n = chunk.Count();
  // Single absorber per shard (the absorbing flag), so a plain max works;
  // relaxed is enough — readers only want the watermark, ordering comes
  // from the chunk's own applied flag.
  if (chunk.epoch > shard.applied_epoch.load(std::memory_order_relaxed)) {
    shard.applied_epoch.store(chunk.epoch, std::memory_order_relaxed);
  }
  chunk.results.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const RowView row{chunk.values.data() + i * arity_, arity_};
    if (chunk.ops[i] == kOpInsert) {
      chunk.results[i] =
          InsertLocal(shard, row, chunk.hashes[i]) ? kChanged : kNoChange;
    } else if (chunk.ops[i] == kOpErase) {
      chunk.results[i] =
          EraseLocal(shard, row, chunk.hashes[i]) ? kChanged : kNoChange;
    } else {
      DSCHED_CHECK_MSG(!chunk.deltas.empty(),
                       "kOpAdjust row without a staged delta");
      chunk.results[i] =
          AdjustLocal(shard, row, chunk.hashes[i], chunk.deltas[i]);
    }
  }
}

bool Relation::TryAbsorb(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.pending.load(std::memory_order_relaxed) == nullptr) {
    return true;  // nothing observed to drain
  }
  bool expected = false;
  if (!shard.absorbing.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
    return false;  // another thread's drain is in progress
  }
  OBS_SCOPE(Category::kStoreAbsorb);
  absorb_runs_.fetch_add(1, std::memory_order_relaxed);
  while (DeltaChunk* head =
             shard.pending.exchange(nullptr, std::memory_order_acquire)) {
    // The Treiber list is newest-first; reverse to publication order.
    DeltaChunk* fifo = nullptr;
    while (head != nullptr) {
      DeltaChunk* next = head->next;
      head->next = fifo;
      fifo = head;
      head = next;
    }
    while (fifo != nullptr) {
      // Read `next` before marking applied: the publisher owns the chunk
      // again (and may Reset it) the instant `applied` flips.
      DeltaChunk* next = fifo->next;
      ApplyChunk(shard, *fifo);
      fifo->applied.store(true, std::memory_order_release);
      fifo = next;
    }
  }
  shard.absorbing.store(false, std::memory_order_release);
  return true;
}

void Relation::WaitApplied(std::size_t shard_index, const DeltaChunk& chunk) {
  if (chunk.applied.load(std::memory_order_acquire)) {
    return;
  }
  absorb_waits_.fetch_add(1, std::memory_order_relaxed);
  std::size_t spins = 0;
  while (true) {
    TryAbsorb(shard_index);
    if (chunk.applied.load(std::memory_order_acquire)) {
      return;
    }
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void Relation::Quiesce() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    while (shard.pending.load(std::memory_order_acquire) != nullptr ||
           shard.absorbing.load(std::memory_order_acquire)) {
      if (!TryAbsorb(s)) {
        std::this_thread::yield();
      }
    }
  }
}

bool Relation::HasPending() const {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (shards_[s].pending.load(std::memory_order_acquire) != nullptr ||
        shards_[s].absorbing.load(std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

// --- RelationStore ----------------------------------------------------------

RelationStore::RelationStore(const Program& program, std::size_t shards)
    : default_shards_(shards) {
  relations_.reserve(program.NumPredicates());
  for (std::size_t p = 0; p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p], default_shards_);
  }
  ResetCaches();
}

void RelationStore::EnsurePredicates(const Program& program) {
  DSCHED_CHECK_MSG(program.NumPredicates() >= relations_.size(),
                   "program lost predicates");
  for (std::size_t p = relations_.size(); p < program.NumPredicates(); ++p) {
    DSCHED_CHECK_MSG(program.predicate_arities[p] <= 32,
                     "predicate arity above 32 is unsupported");
    relations_.emplace_back(program.predicate_arities[p], default_shards_);
    caches_.push_back(std::make_unique<PredicateCache>());
  }
}

void RelationStore::ResetCaches() {
  caches_.clear();
  caches_.reserve(relations_.size());
  for (std::size_t p = 0; p < relations_.size(); ++p) {
    caches_.push_back(std::make_unique<PredicateCache>());
  }
}

Relation& RelationStore::Of(std::uint32_t predicate) {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

const Relation& RelationStore::Of(std::uint32_t predicate) const {
  DSCHED_CHECK_MSG(predicate < relations_.size(), "unknown predicate id");
  return relations_[predicate];
}

std::size_t RelationStore::TotalTuples() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) {
    total += r.Size();
  }
  return total;
}

RelationStore::CacheEntry* RelationStore::FindEntry(
    const PredicateCache& cache, std::uint64_t mask) {
  CacheEntry* entry = cache.head.load(std::memory_order_acquire);
  while (entry != nullptr && entry->mask != mask) {
    entry = entry->next;
  }
  return entry;
}

bool RelationStore::IsFresh(const CachedIndex& cached,
                            const Relation& relation) {
  // Pairs with the release store at the end of RefreshIndex's init branch:
  // a reader that observes the published shard count also observes the
  // subs vector and the seen_version array it guards, so the stamp probe
  // below never touches an entry that is still being initialized.
  if (cached.ready_shards.load(std::memory_order_acquire) !=
      relation.NumShards()) {
    return false;
  }
  for (std::size_t s = 0; s < relation.NumShards(); ++s) {
    if (cached.seen_version[s].load(std::memory_order_acquire) !=
        relation.ShardVersion(s)) {
      return false;
    }
  }
  return true;
}

void RelationStore::RefreshIndex(
    CachedIndex& cached, const Relation& relation,
    const std::vector<std::size_t>& columns) const {
  const std::size_t num_shards = relation.NumShards();
  if (cached.subs.size() != num_shards) {
    cached.subs.assign(num_shards, CachedIndex::Sub{});
    cached.seen_version =
        std::make_unique<std::atomic<std::uint64_t>[]>(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      cached.seen_version[s].store(~std::uint64_t{0},
                                   std::memory_order_relaxed);
    }
    cached.seen_epoch.assign(num_shards, ~std::uint64_t{0});
    cached.rows_indexed.assign(num_shards, 0);
    cached.total_groups = 0;
    cached.ready_shards.store(num_shards, std::memory_order_release);
  }

  bool rebuild = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (cached.seen_epoch[s] != relation.ShardEraseEpoch(s) ||
        cached.rows_indexed[s] > relation.ShardSize(s)) {
      // An erasure somewhere invalidated row ids: full rebuild.
      rebuild = true;
      break;
    }
  }
  if (rebuild) {
    for (CachedIndex::Sub& sub : cached.subs) {
      sub.slots.clear();
      sub.groups.clear();
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      cached.seen_epoch[s] = relation.ShardEraseEpoch(s);
      cached.rows_indexed[s] = 0;
    }
    cached.total_groups = 0;
    index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }

  const auto rehash_sub = [](CachedIndex::Sub& sub, std::size_t capacity) {
    sub.slots.assign(capacity, 0);
    const std::size_t mask = capacity - 1;
    for (std::uint32_t g = 0; g < sub.groups.size(); ++g) {
      std::size_t slot = sub.groups[g].hash & mask;
      while (sub.slots[slot] != 0) {
        slot = (slot + 1) & mask;
      }
      sub.slots[slot] = SlotWord(sub.groups[g].hash, g);
    }
  };

  const auto add_row = [&](RowView row_view, std::uint32_t id,
                           std::uint64_t hash) {
    CachedIndex::Sub& sub =
        cached.subs[static_cast<std::size_t>(hash >> 24) & (num_shards - 1)];
    if (sub.slots.empty()) {
      sub.slots.assign(kMinSlots, 0);
    }
    const std::uint64_t tag = hash & kTagMask;
    std::size_t mask = sub.slots.size() - 1;
    std::size_t slot = hash & mask;
    while (sub.slots[slot] != 0) {
      if ((sub.slots[slot] & kTagMask) == tag) {
        CachedIndex::Group& group =
            sub.groups[(sub.slots[slot] & kIdMask) - 1];
        if (group.hash == hash &&
            RowColumnsSame(row_view, relation.Row(group.rep), columns)) {
          // Same key as the group's representative row: append.
          group.rows.push_back(id);
          return;
        }
      }
      slot = (slot + 1) & mask;
    }
    if (NeedsGrow(sub.groups.size(), sub.slots.size())) {
      rehash_sub(sub, sub.slots.size() * 2);
      mask = sub.slots.size() - 1;
      slot = hash & mask;
      while (sub.slots[slot] != 0) {
        slot = (slot + 1) & mask;
      }
    }
    CachedIndex::Group group;
    group.hash = hash;
    group.rep = id;
    group.rows.push_back(id);
    sub.groups.push_back(std::move(group));
    sub.slots[slot] =
        SlotWord(hash, static_cast<std::uint32_t>(sub.groups.size() - 1));
    ++cached.total_groups;
  };

  // Append-only fast path: index just the new rows of the shards the delta
  // touched.  This is the semi-naive hot path — fixpoint rounds insert
  // small deltas between lookups, and an O(Δ) extension that skips
  // untouched shards beats an O(|R|) rebuild per round.
  std::uint64_t extended = 0;
  std::uint64_t skipped = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::uint32_t size = relation.ShardSize(s);
    if (cached.rows_indexed[s] == size) {
      if (!rebuild && size > 0) {
        ++skipped;
      }
      continue;
    }
    for (std::uint32_t local = cached.rows_indexed[s]; local < size;
         ++local) {
      const RowView row = relation.ShardRow(s, local);
      add_row(row, relation.EncodeRowId(s, local),
              HashRowColumns(row, columns));
    }
    extended += size - cached.rows_indexed[s];
    cached.rows_indexed[s] = size;
  }
  index_extend_rows_.fetch_add(extended, std::memory_order_relaxed);
  index_shard_skips_.fetch_add(skipped, std::memory_order_relaxed);

  // Publish the new stamps last: a lock-free reader that sees them fresh
  // (acquire) is guaranteed to see every structure write above.
  for (std::size_t s = 0; s < num_shards; ++s) {
    cached.seen_version[s].store(relation.ShardVersion(s),
                                 std::memory_order_release);
  }
}

const RelationStore::CachedIndex::Group* RelationStore::FindGroup(
    const CachedIndex& cached, const Relation& relation,
    const std::vector<std::size_t>& columns, RowView key,
    std::uint64_t hash) {
  if (cached.subs.empty()) {
    return nullptr;
  }
  const CachedIndex::Sub& sub =
      cached.subs[static_cast<std::size_t>(hash >> 24) &
                  (cached.subs.size() - 1)];
  if (sub.slots.empty()) {
    return nullptr;
  }
  const std::size_t mask = sub.slots.size() - 1;
  const std::uint64_t tag = hash & kTagMask;
  std::size_t slot = hash & mask;
  while (sub.slots[slot] != 0) {
    if ((sub.slots[slot] & kTagMask) == tag) {
      const CachedIndex::Group& group =
          sub.groups[(sub.slots[slot] & kIdMask) - 1];
      if (RowColumnsEqual(relation.Row(group.rep), columns, key)) {
        return &group;
      }
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

RelationStore::PreparedIndex RelationStore::Prepare(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  const Relation& relation = Of(predicate);
  std::uint64_t mask = 0;
  for (const std::size_t c : columns) {
    DSCHED_CHECK_MSG(c < relation.Arity(), "index column out of range");
    mask |= (std::uint64_t{1} << c);
  }
  PredicateCache& cache = *caches_[predicate];
  // Read-mostly fast path: a fresh entry needs no lock at all — an acquire
  // walk of the entry list plus one acquire stamp load per relation shard.
  // The handle stays valid after return — see the class comment.
  if (CacheEntry* entry = FindEntry(cache, mask);
      entry != nullptr && IsFresh(entry->index, relation)) {
    prepare_fast_.fetch_add(1, std::memory_order_relaxed);
    return {&entry->index, &relation, &columns};
  }
  // Stale or missing: take the refresh mutex and recheck (another phase
  // may have refreshed the entry while we waited).
  const std::lock_guard<std::mutex> lock(cache.refresh_mutex);
  CacheEntry* entry = FindEntry(cache, mask);
  if (entry == nullptr) {
    entry = new CacheEntry;
    entry->mask = mask;
    entry->next = cache.head.load(std::memory_order_relaxed);
    cache.head.store(entry, std::memory_order_release);
  }
  if (!IsFresh(entry->index, relation)) {
    RefreshIndex(entry->index, relation, columns);
  }
  prepare_locked_.fetch_add(1, std::memory_order_relaxed);
  return {&entry->index, &relation, &columns};
}

std::span<const std::uint32_t> RelationStore::Lookup(
    std::uint32_t predicate, const std::vector<std::size_t>& columns,
    const Tuple& key) const {
  return LookupPrepared(Prepare(predicate, columns), key);
}

std::size_t RelationStore::IndexDistinct(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  const Relation& relation = Of(predicate);
  std::uint64_t mask = 0;
  for (const std::size_t c : columns) {
    mask |= (std::uint64_t{1} << c);
  }
  const CacheEntry* entry = FindEntry(*caches_[predicate], mask);
  if (entry == nullptr || !IsFresh(entry->index, relation)) {
    return 0;
  }
  return entry->index.total_groups;
}

std::size_t RelationStore::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const Relation& r : relations_) {
    bytes += r.MemoryBytes();
  }
  for (const auto& cache : caches_) {
    const std::lock_guard<std::mutex> lock(cache->refresh_mutex);
    for (const CacheEntry* entry =
             cache->head.load(std::memory_order_acquire);
         entry != nullptr; entry = entry->next) {
      for (const CachedIndex::Sub& sub : entry->index.subs) {
        bytes += sub.slots.capacity() * sizeof(std::uint64_t) +
                 sub.groups.capacity() * sizeof(CachedIndex::Group);
        for (const CachedIndex::Group& group : sub.groups) {
          bytes += group.rows.capacity() * sizeof(std::uint32_t);
        }
      }
    }
  }
  return bytes;
}

void RelationStore::ExportMetrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.Set(prefix + "prepare_fast",
               prepare_fast_.load(std::memory_order_relaxed));
  registry.Set(prefix + "prepare_locked",
               prepare_locked_.load(std::memory_order_relaxed));
  registry.Set(prefix + "index_rebuilds",
               index_rebuilds_.load(std::memory_order_relaxed));
  registry.Set(prefix + "index_extend_rows",
               index_extend_rows_.load(std::memory_order_relaxed));
  registry.Set(prefix + "index_shard_skips",
               index_shard_skips_.load(std::memory_order_relaxed));
  std::uint64_t publish_chunks = 0;
  std::uint64_t publish_rows = 0;
  std::uint64_t absorb_runs = 0;
  std::uint64_t absorb_waits = 0;
  std::uint64_t rows = 0;
  std::uint64_t max_shard_rows = 0;
  std::size_t shards = 0;
  for (const Relation& r : relations_) {
    publish_chunks += r.PublishedChunks();
    publish_rows += r.PublishedRows();
    absorb_runs += r.AbsorbRuns();
    absorb_waits += r.AbsorbWaits();
    shards = std::max(shards, r.NumShards());
    for (std::size_t s = 0; s < r.NumShards(); ++s) {
      rows += r.ShardSize(s);
      max_shard_rows = std::max<std::uint64_t>(max_shard_rows, r.ShardSize(s));
    }
  }
  registry.Set(prefix + "publish_chunks", publish_chunks);
  registry.Set(prefix + "publish_rows", publish_rows);
  registry.Set(prefix + "absorb_runs", absorb_runs);
  registry.Set(prefix + "absorb_waits", absorb_waits);
  registry.Set(prefix + "shards", shards);
  registry.Set(prefix + "rows", rows);
  registry.Set(prefix + "shard_rows_max", max_shard_rows);
}

}  // namespace dsched::datalog
