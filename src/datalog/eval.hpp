// Bottom-up evaluation: rule application (joins), naive and semi-naive
// fixpoints over stratified components.
//
// The join machinery is shared with the incremental engine, which replays
// rules with one body element restricted to a delta set — the standard
// semi-naive/DRed device.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"
#include "obs/metrics.hpp"

namespace dsched::datalog {

/// Evaluation effort counters.
struct EvalStats {
  std::uint64_t rule_applications = 0;  ///< ApplyRule invocations
  std::uint64_t bindings_explored = 0;  ///< partial join rows visited
  std::uint64_t tuples_derived = 0;     ///< head emissions (pre-dedup)
  std::uint64_t tuples_inserted = 0;    ///< genuinely new tuples
  std::uint64_t rounds = 0;             ///< semi-naive iterations
  std::uint64_t index_probes = 0;       ///< indexed lookups issued by joins
  std::uint64_t index_misses = 0;       ///< probes that matched no rows

  void Merge(const EvalStats& other);
  [[nodiscard]] std::string ToString() const;

  /// Publishes the counters into `registry` under `prefix` (e.g.
  /// "datalog.").
  void ExportMetrics(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

/// Restriction applied to one rule application.
struct DeltaRestriction {
  /// Index into rule.body of the element bound against `rows` instead of
  /// the store; kNone applies the rule unrestricted.
  std::size_t body_index = kNone;
  /// The delta tuples for that element's predicate.
  std::span<const Tuple> rows;
  /// When the restricted element is a *negated* literal, it is matched
  /// positively against `rows` (DRed's negation-delta device) and its
  /// normal absence check is skipped.
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
};

/// Applies `rule` against `store`, calling `emit` for each derived head
/// tuple (duplicates possible).  `emit` MUST NOT mutate the store: join
/// iteration holds spans into it.  Restriction semantics per
/// DeltaRestriction.
void ApplyRule(const Program& program, const RelationStore& store,
               const Rule& rule, const DeltaRestriction& restriction,
               EvalStats& stats, const std::function<void(const Tuple&)>& emit);

/// True iff `head_tuple` is derivable by `rule` in `store` (the DRed
/// rederivation query).  Not defined for aggregation rules.
[[nodiscard]] bool IsDerivable(const Program& program,
                               const RelationStore& store, const Rule& rule,
                               const Tuple& head_tuple, EvalStats& stats);

/// Number of rule instances of `rule` deriving exactly `head_tuple` in
/// `store` — i.e. complete body matches under the head binding.  Distinct
/// variable assignments count separately even when they ground the body to
/// the same atoms.  The counting-maintenance recount query.  Not defined
/// for aggregation rules.
[[nodiscard]] std::uint64_t CountDerivations(const Program& program,
                                             const RelationStore& store,
                                             const Rule& rule,
                                             const Tuple& head_tuple,
                                             EvalStats& stats);

/// Enumerates the derivations of `head_tuple` by `rule`: for every complete
/// body match, calls `on_derivation` with the ground positive body literals
/// as (predicate, tuple) pairs, in body order.  The span is valid only
/// during the call.  `on_derivation` returning true stops the enumeration
/// (the Backward/Forward "one live derivation suffices" query); the return
/// value says whether it stopped early.  Not defined for aggregation rules.
bool ForEachDerivation(
    const Program& program, const RelationStore& store, const Rule& rule,
    const Tuple& head_tuple, EvalStats& stats,
    const std::function<bool(
        const std::vector<std::pair<std::uint32_t, Tuple>>&)>& on_derivation);

/// Evaluates one aggregation rule against the current store: joins the
/// body, deduplicates complete variable bindings, groups by the head's
/// group-by terms, and folds the aggregate.  Returns the full head relation
/// contents this rule implies (one tuple per non-empty group).  sum/min/max
/// require integer values and throw util::InvalidArgument otherwise.
[[nodiscard]] std::vector<Tuple> EvaluateAggregateRule(
    const Program& program, const RelationStore& store, const Rule& rule,
    EvalStats& stats);

/// Per-predicate delta sets flowing between components.
using DeltaMap = std::map<std::uint32_t, std::vector<Tuple>>;

/// Evaluates one component to fixpoint (semi-naive).
///
/// If `seed_deltas` is null, this is a from-scratch evaluation: every rule
/// fires once unrestricted, then recursive rounds run on the internal
/// deltas.  If non-null, it is an incremental continuation: rules fire once
/// per body element whose predicate has a seed delta (restricted to it),
/// then recursive rounds run.  New tuples of member predicates are appended
/// to `out_deltas` (if provided).
EvalStats EvaluateComponent(const Program& program,
                            const Stratification& strat,
                            std::uint32_t component, RelationStore& store,
                            const DeltaMap* seed_deltas,
                            DeltaMap* out_deltas);

/// From-scratch evaluation of the whole program (facts included — they are
/// empty-body rules).  Returns merged stats.
EvalStats EvaluateProgram(const Program& program, const Stratification& strat,
                          RelationStore& store);

/// Reference evaluator for tests: naive iterate-all-rules-until-fixpoint,
/// stratum by stratum.  Asymptotically slower; must agree with
/// EvaluateProgram exactly.
EvalStats EvaluateProgramNaive(const Program& program,
                               const Stratification& strat,
                               RelationStore& store);

}  // namespace dsched::datalog
