// Parallel incremental maintenance — the paper's system, closed full
// circle: the per-component DRed phases of one update batch are executed
// as REAL task bodies on a worker pool, ordered by any of the library's
// schedulers over the very activation DAG the paper models.
//
// How it maps onto the model:
//  * DAG nodes: one zero-work collector per predicate, one task per rule
//    component (same shape as schedule_bridge.hpp);
//  * initially dirty: the base predicates the update touches (their
//    component task, when they have rules);
//  * a component task's body runs RunComponentPhase — the actual
//    overdelete / rederive / insert work — and reports whether its
//    relations net-changed, which is what activates downstream collectors;
//  * a collector's body just forwards its predicate's change flag.
// Phase isolation comes from the DAG itself: a phase writes only its
// member relations and net-delta slots, and every reader is a descendant
// the scheduler will not start until the phase completes — the
// "activated ancestors first" rule doing real synchronization work.
#pragma once

#include <string>

#include "datalog/incremental.hpp"
#include "datalog/maintenance.hpp"
#include "datalog/pipeline_plan.hpp"
#include "runtime/executor.hpp"
#include "runtime/pipeline.hpp"
#include "trace/job_trace.hpp"

namespace dsched::datalog {

/// Options for one parallel update.
struct ParallelUpdateOptions {
  /// Scheduler factory spec driving the execution ("hybrid", "levelbased",
  /// "lbl:<k>", "logicblox", "signal", "oracle" is NOT allowed — it would
  /// need the outcome in advance).
  std::string scheduler_spec = "hybrid";
  std::size_t workers = 4;
  /// When set, the update runs on this host-provided shared router (one
  /// channel per update) instead of constructing a private pool, and
  /// `workers` is ignored in favour of router->NumWorkers().  This is how
  /// the service layer interleaves many sessions' cascades on one pool.
  /// The caller must keep the router alive for the duration of the call.
  runtime::TaskRouter* router = nullptr;
  /// How each component phase maintains deletions (maintenance.hpp).
  /// Counting and B/F fall back to DRed per component where required.
  MaintenanceStrategy strategy = MaintenanceStrategy::kDRed;
  /// Cross-update counting state.  Null means a transient per-call state:
  /// still correct, but kCounting then re-initializes the derivation
  /// counts on every call.  Sessions should own one per database.  The
  /// phases write disjoint per-predicate slots, so one state is safe to
  /// share across the update's workers.
  MaintenanceState* maint_state = nullptr;

  // --- epoch pipelining (runtime/pipeline.hpp, DESIGN.md §12) ----------
  /// When set, this update joins its session's epoch pipeline: the
  /// coordinator holds back each component task until epoch-1 has
  /// finalized every level the task's writes could race with (the fences
  /// in `plan`), and publishes this cascade's own per-level finalization
  /// as the levels drain.  Requires `plan` (which must outlive the call)
  /// and a pipeline-eligible strategy (StrategyPipelineEligible — the
  /// caller clamps depth, this layer trusts it).  Null = unpipelined.
  runtime::StratumFrontier* frontier = nullptr;
  /// The dense 1-based session epoch of this update; stamped on every
  /// published DeltaChunk and used to gate on epoch-1's frontier entry.
  std::uint64_t epoch = 0;
  /// Levels + fences for the program (Database::Plan() caches one).
  const PipelinePlan* plan = nullptr;

  // --- resource accounting (runtime/executor.hpp) ----------------------
  /// Live-resource ceiling for this update's accounted task utilities;
  /// 0 = account but never gate.  Exhaustion defers dispatch at the
  /// coordinator (backpressure), never fails the update.
  std::uint64_t memory_budget = 0;
  /// Account shared across this session's pipelined cascades so one
  /// ceiling covers all in-flight epochs; null = per-update account.
  runtime::ResourceAccount* account = nullptr;
};

/// Result of a parallel update.
struct ParallelUpdateResult {
  /// Per-component stats, same semantics as IncrementalEngine::Apply
  /// (components in evaluation order; untouched ones marked unchanged).
  UpdateResult update;
  /// Executor-level stats: tasks run, activations, wall time, scheduler
  /// decision time.
  runtime::Executor::RunStats run;
  /// The activation DAG the update executed over.
  trace::JobTrace trace;
};

/// Applies `request` to the materialized `store` using `workers` threads.
/// Equivalent to IncrementalEngine::Apply in final state (the tests verify
/// store equality); faster when independent components dominate.
[[nodiscard]] ParallelUpdateResult ApplyParallel(
    const Program& program, const Stratification& strat, RelationStore& store,
    const UpdateRequest& request, const ParallelUpdateOptions& options = {});

}  // namespace dsched::datalog
