// Pluggable incremental-maintenance strategies.
//
// DRed (incremental.hpp) is pessimistic on deletions: it overdeletes every
// tuple that MIGHT have lost support, then rederives the survivors.  On
// deletion-heavy updates with redundant derivations that is the hot path's
// dominant cost.  This module adds the two classic alternatives and lets
// the caller pick per update:
//
//  * kCounting — per-derivation counts (Gupta-Mumick-Subrahmanian's
//    counting algorithm).  Each tuple of an eligible predicate carries the
//    number of rule instances deriving it (plus one when it is also a base
//    fact).  A deletion that removes SOME support just decrements; the
//    tuple dies only at zero, so no overdelete/rederive round-trip ever
//    happens.  Exactness is kept by *recounting* affected heads against
//    the store rather than applying per-instance increments — a rule
//    instance with two changed body tuples would otherwise be counted at
//    both restricted positions.  Counting is sound only for nonrecursive,
//    non-aggregate components (counts of recursive predicates are not
//    well-founded under deletion); other components fall back to DRed.
//    The counts live in the sharded store's per-shard count column and
//    flow through the same lock-free DeltaChunk publication path as
//    inserts (Relation::AdjustCount / ShardedWriteBuffer::StageAdjust).
//
//  * kBackwardForward — B/F (Motik et al.).  The backward phase walks the
//    suspect set and answers "is this tuple still derivable?" by probing
//    derivations directly (ForEachDerivation), recursing only into suspect
//    supports; nothing is erased until a tuple is PROVEN dead, so the
//    overdeletion explosion never happens.  Works for recursive
//    components; aggregates fall back to DRed's recompute-and-diff.
//
// All strategies produce bit-identical final stores (the tests verify
// DRed ≡ Counting ≡ B/F tuple-for-tuple) and share the sharded store, the
// join kernel, and the scheduler-driven cascade unchanged — only the
// per-component phase body differs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "datalog/incremental.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"

namespace dsched::datalog {

/// How one update's deletion pipeline is maintained.
enum class MaintenanceStrategy : std::uint8_t {
  kDRed = 0,            ///< delete-and-rederive (the default)
  kCounting = 1,        ///< per-derivation counts, recount-based
  kBackwardForward = 2  ///< backward aliveness probes, forward insertions
};

/// Canonical spec string for a strategy ("dred", "counting", "bf").
[[nodiscard]] const char* MaintenanceStrategyName(MaintenanceStrategy s);

/// All accepted spec strings, in enum order.
[[nodiscard]] const std::vector<std::string>& KnownMaintenanceStrategies();

/// Parses a spec string; throws util::ParseError naming the valid values
/// when `name` is not one of KnownMaintenanceStrategies().
[[nodiscard]] MaintenanceStrategy ParseMaintenanceStrategy(
    const std::string& name);

/// Whether a strategy may run with K > 1 update epochs in flight
/// (DESIGN.md §12) — the per-strategy analogue of StrategyEligibility's
/// per-component verdicts.  DRed and B/F qualify: a phase touches only its
/// member relations, its rules' body predicates, and per-worker scratch,
/// all covered by the epoch fence.  Counting does NOT: EnsureCountingState
/// / SealCountingState bracket the WHOLE update against the shared
/// MaintenanceState fingerprint (and recount phases read/write the shadow
/// base-fact sets), so overlapped epochs would race on cross-update state
/// no per-level fence covers.  Sessions clamp an ineligible strategy's
/// pipeline depth to 1.
[[nodiscard]] bool StrategyPipelineEligible(MaintenanceStrategy s);

/// Cross-update state a counting session carries between Apply calls.
///
/// base_facts is the shadow EDB: per predicate, the tuples whose presence
/// is asserted directly (base inserts, or inferred at count
/// initialization as "present but underivable by any rule").  A base fact
/// contributes +1 to its tuple's count on top of the rule-derivation
/// count, which is what makes "delete the base fact of a still-derivable
/// tuple" a pure decrement.
///
/// counts_fingerprint is the store's summed relation Version() at the last
/// Seal.  Any store mutation outside the counting pipeline (a DRed or B/F
/// update, a direct write) bumps versions and invalidates the counts;
/// EnsureCountingState detects the mismatch and re-initializes.  The pure
/// count-move path (AdjustCount's kChanged outcome) deliberately does not
/// bump versions — membership is unchanged — so counting updates do not
/// invalidate themselves.
struct MaintenanceState {
  using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
  std::vector<TupleSet> base_facts;  ///< indexed by predicate id
  std::uint64_t counts_fingerprint = 0;
  bool counts_ready = false;
  /// Predicates whose counts are rule-set-stale even though the fingerprint
  /// matches: a rule evolution rewrote the derivations of exactly the
  /// affected cone and resealed the fingerprint, so the next counting
  /// update recounts only these instead of the whole store (indexed by
  /// predicate id; may be shorter than NumPredicates — missing means
  /// fresh).
  std::vector<std::uint8_t> stale_counts;
  bool any_stale = false;
};

/// Marks every predicate with `affected[p]` true as count-stale, so the
/// next EnsureCountingState recounts just those (when the fingerprint still
/// matches).  Called by rule evolution with the cone bitmap; a no-op-sized
/// update for everything outside it.
void MarkCountingStale(MaintenanceState& state,
                       const std::vector<bool>& affected);

/// True iff `component` runs the pure counting phase under kCounting
/// (rule-owning, non-aggregate, nonrecursive).  Others fall back to DRed.
[[nodiscard]] bool CountingEligible(const Program& program,
                                    const Stratification& strat,
                                    std::uint32_t component);

/// Makes `state`'s counts exact for the current store contents: when the
/// fingerprint is stale, recounts every tuple of every counting-eligible
/// predicate (CountDerivations per owning rule) and infers the shadow base
/// facts (tuples with zero rule derivations get count 1 and a base_facts
/// entry).  Cheap no-op when the fingerprint matches.
void EnsureCountingState(const Program& program, const Stratification& strat,
                         RelationStore& store, MaintenanceState& state);

/// Records the store's current fingerprint in `state` after a counting
/// update, so the next EnsureCountingState call is a no-op.
void SealCountingState(const RelationStore& store, MaintenanceState& state);

/// True when `state` is sealed against the store's CURRENT fingerprint (no
/// untracked mutation since the last seal).  Rule evolution checks this
/// before scoping invalidation: only then can a cone-local MarkCountingStale
/// + post-cascade reseal legitimately preserve the out-of-cone counts.
[[nodiscard]] bool CountingStateFresh(const RelationStore& store,
                                      const MaintenanceState& state);

/// Runs one component's maintenance phase under `strategy`.  Drop-in for
/// RunComponentPhase (same contract, same thread-compatibility: writes
/// only member relations, member net entries, member base_facts slots of
/// `state`, and the returned stats).  `state` is required for kCounting
/// (EnsureCountingState must have run against the pre-update store);
/// ignored by the other strategies.  Components a strategy cannot handle
/// are delegated to DRed, so any component is safe to pass.
ComponentUpdateStats RunMaintenancePhase(
    MaintenanceStrategy strategy, const Program& program,
    const Stratification& strat, std::uint32_t component, RelationStore& store,
    const GroupedBaseChanges& base, std::vector<PredicateDelta>& net,
    StoreWriteBuffer* scratch = nullptr, MaintenanceState* state = nullptr);

/// PropagateUpdate with a strategy: runs every touched (or force-listed)
/// component's RunMaintenancePhase in evaluation order, bracketing with
/// EnsureCountingState / SealCountingState when counting.  `state` null
/// means a transient per-call state — correct, but counting then pays a
/// full count initialization every call; sessions should own one.
/// `only_components` (when non-null) restricts the cascade to the listed
/// components — the rest are recorded untouched without even probing their
/// inputs.  Rule evolution passes the affected cone here: deltas cannot
/// escape it (the cone is downstream-closed), so skipping the input probe
/// outside is sound and is what makes maintenance affected-predicate-only.
UpdateResult PropagateUpdateWithStrategy(
    const Program& program, const Stratification& strat, RelationStore& store,
    const GroupedBaseChanges& base, MaintenanceStrategy strategy,
    MaintenanceState* state = nullptr,
    const std::vector<bool>* force_touched = nullptr,
    const std::vector<bool>* only_components = nullptr);

}  // namespace dsched::datalog
