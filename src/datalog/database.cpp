#include "datalog/database.hpp"

#include <functional>
#include <utility>

#include "datalog/eval.hpp"
#include "datalog/parallel_update.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::datalog {

Database::Database(std::string_view program_text)
    : compiled_(CompileProgram(ParseProgram(program_text))) {
  store_ = RelationStore(compiled_->program);
}

void Database::Insert(std::string_view predicate, Tuple tuple) {
  DSCHED_CHECK_MSG(!materialized_,
                   "use MakeUpdate()/Apply() after materialization");
  const Program& program = compiled_->program;
  const std::uint32_t pred = program.PredicateId(predicate);
  if (tuple.size() != program.predicate_arities[pred]) {
    throw util::InvalidArgument("arity mismatch inserting into '" +
                                std::string(predicate) + "'");
  }
  store_.Of(pred).Insert(tuple);
}

EvalStats Database::Materialize() {
  const EvalStats stats =
      EvaluateProgram(compiled_->program, compiled_->strat, store_);
  materialized_ = true;
  return stats;
}

std::vector<Tuple> Database::Query(std::string_view predicate) const {
  const std::shared_ptr<const CompiledProgram> snap = Snapshot();
  return store_.Of(snap->program.PredicateId(predicate)).Tuples();
}

bool Database::Contains(std::string_view predicate, const Tuple& tuple) const {
  const std::shared_ptr<const CompiledProgram> snap = Snapshot();
  return store_.Of(snap->program.PredicateId(predicate)).Contains(tuple);
}

Database::Update& Database::Update::Insert(std::string_view predicate,
                                           Tuple tuple) {
  request_.insertions.emplace_back(
      db_->compiled_->program.PredicateId(predicate), std::move(tuple));
  return *this;
}

Database::Update& Database::Update::Delete(std::string_view predicate,
                                           Tuple tuple) {
  request_.deletions.emplace_back(
      db_->compiled_->program.PredicateId(predicate), std::move(tuple));
  return *this;
}

UpdateResult Database::Apply(const Update& update) {
  return ApplyRequest(update.request_, default_strategy_);
}

UpdateResult Database::PropagateEvolution(const CompiledProgram& next,
                                          const std::vector<bool>& affected,
                                          GroupedBaseChanges& base,
                                          std::vector<bool>& force) {
  const Stratification& strat = next.strat;
  // Restrict the cascade to the affected cone's components: deltas cannot
  // escape the cone (it is downstream-closed), so everything outside is
  // recorded untouched without probing.
  std::vector<bool> only(strat.NumComponents(), false);
  for (std::size_t p = 0; p < affected.size(); ++p) {
    if (affected[p]) {
      only[strat.component_of[p]] = true;
    }
  }

  // Counting plane: the cone's counts are rule-set-relative while the rest
  // of the store keeps both its contents and its rules — so when the seal
  // is still fresh, mark only the cone stale instead of discarding counts
  // wholesale.  A stale (unsealed) plane gets nothing: its next use was
  // going to full-recount anyway.
  const bool counts_were_exact = CountingStateFresh(store_, maint_state_);
  if (counts_were_exact) {
    MarkCountingStale(maint_state_, affected);
  }

  UpdateResult update;
  {
    OBS_SCOPE(Category::kEvolveMaintain);
    update =
        PropagateUpdateWithStrategy(next.program, strat, store_, base,
                                    default_strategy_, &maint_state_, &force,
                                    &only);
  }
  if (counts_were_exact &&
      default_strategy_ != MaintenanceStrategy::kCounting) {
    // The cascade moved the store without maintaining counts, but only
    // inside the cone (already marked stale) — reseal so the scoped marks
    // survive the fingerprint check instead of escalating to a full
    // recount.
    SealCountingState(store_, maint_state_);
  }
  return update;
}

Database::EvolveResult Database::EvolveAddRules(std::string_view rules_text) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before changing rules");
  EvolveResult result;
  std::vector<bool> affected;
  std::shared_ptr<CompiledProgram> next;
  std::size_t old_rule_count = 0;
  {
    // The recompile deep-copies the program — symbol table included, which
    // a concurrent Sym() intern would tear — so hold the symbol lock from
    // copy through publish.  Any failure throws before the swap, leaving
    // this database on its current version.  The cascade runs outside.
    const std::lock_guard<std::mutex> sym_lock(sym_mutex_);
    OBS_SCOPE(Category::kEvolveRecompile);
    Program candidate = compiled_->program;
    old_rule_count = candidate.rules.size();
    ExtendProgram(candidate, rules_text);
    std::vector<std::uint32_t> changed_heads;
    changed_heads.reserve(candidate.rules.size() - old_rule_count);
    for (std::size_t r = old_rule_count; r < candidate.rules.size(); ++r) {
      changed_heads.push_back(candidate.rules[r].head.predicate);
    }
    next = RecompileProgram(*compiled_, std::move(candidate), changed_heads,
                            &affected, &result.stats);
    store_.EnsurePredicates(next->program);
    const std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    compiled_ = next;
  }
  result.program_version = next->version;
  OBS_COUNTER(Category::kEvolveConePred, result.stats.cone_predicates);
  OBS_COUNTER(Category::kEvolveReusedComponent,
              result.stats.reused_components);

  // Seed: every new rule's direct derivations against the current state,
  // injected as if they were base insertions of the head predicate.  The
  // propagation rounds complete recursive fixpoints and cascade downstream
  // (including destructive effects through negation).  Aggregate heads are
  // regenerated wholesale by their recompute-diff phase, so forcing their
  // component is enough.
  const Program& program = next->program;
  const Stratification& strat = next->strat;
  GroupedBaseChanges base;
  base.insertions.resize(program.NumPredicates());
  base.deletions.resize(program.NumPredicates());
  std::vector<bool> force(strat.NumComponents(), false);
  EvalStats scratch;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (std::size_t r = old_rule_count; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    force[strat.component_of[rule.head.predicate]] = true;
    if (rule.IsAggregate()) {
      continue;
    }
    ApplyRule(program, store_, rule, DeltaRestriction{}, scratch, collect);
    auto& sink = base.insertions[rule.head.predicate];
    for (Tuple& t : buffer) {
      sink.push_back(std::move(t));
    }
    buffer.clear();
  }
  result.update = PropagateEvolution(*next, affected, base, force);
  return result;
}

Database::EvolveResult Database::EvolveRemoveRule(
    std::string_view clause_text) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before changing rules");
  EvolveResult result;
  std::vector<bool> affected;
  std::shared_ptr<CompiledProgram> next;
  Rule removed;
  {
    const std::lock_guard<std::mutex> sym_lock(sym_mutex_);
    OBS_SCOPE(Category::kEvolveRecompile);
    const Rule target = ParseSingleClause(compiled_->program, clause_text);
    const std::vector<Rule>& rules = compiled_->program.rules;
    std::size_t index = rules.size();
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (RulesEquivalent(rules[r], target)) {
        index = r;
        break;
      }
    }
    if (index == rules.size()) {
      throw util::InvalidArgument("no such rule in the program: " +
                                  std::string(clause_text));
    }
    removed = rules[index];
    Program candidate = compiled_->program;
    candidate.rules.erase(candidate.rules.begin() +
                          static_cast<std::ptrdiff_t>(index));
    next = RecompileProgram(*compiled_, std::move(candidate),
                            {removed.head.predicate}, &affected,
                            &result.stats);
    const std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    compiled_ = next;
  }
  result.program_version = next->version;
  OBS_COUNTER(Category::kEvolveConePred, result.stats.cone_predicates);
  OBS_COUNTER(Category::kEvolveReusedComponent,
              result.stats.reused_components);

  // The removed rule's current derivations are exactly the support it
  // contributed to the fixpoint; inject them as base deletions so the
  // cascade retracts (or recounts away) whatever the remaining rules no
  // longer sustain.  Aggregate heads are regenerated wholesale by their
  // recompute-diff phase, so forcing their component is enough.
  const Program& program = next->program;
  const Stratification& strat = next->strat;
  GroupedBaseChanges base;
  base.insertions.resize(program.NumPredicates());
  base.deletions.resize(program.NumPredicates());
  std::vector<bool> force(strat.NumComponents(), false);
  force[strat.component_of[removed.head.predicate]] = true;
  EvalStats scratch;
  if (!removed.IsAggregate()) {
    std::vector<Tuple> buffer;
    const std::function<void(const Tuple&)> collect =
        [&buffer](const Tuple& t) { buffer.push_back(t); };
    ApplyRule(program, store_, removed, DeltaRestriction{}, scratch, collect);
    base.deletions[removed.head.predicate] = std::move(buffer);
  }
  result.update = PropagateEvolution(*next, affected, base, force);
  return result;
}

UpdateResult Database::ApplyParallel(const Update& update,
                                     const ParallelOptions& options) {
  return ApplyRequestParallel(update.request_, options).update;
}

UpdateResult Database::ApplyRequest(const UpdateRequest& request) {
  return ApplyRequest(request, default_strategy_);
}

UpdateResult Database::ApplyRequest(const UpdateRequest& request,
                                    MaintenanceStrategy strategy) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before applying updates");
  // One snapshot acquire per dispatch: the whole cascade reads this pin.
  const std::shared_ptr<const CompiledProgram> snap = Snapshot();
  return PropagateUpdateWithStrategy(snap->program, snap->strat, store_,
                                     GroupedBaseChanges(snap->program, request),
                                     strategy, &maint_state_);
}

ParallelUpdateResult Database::ApplyRequestParallel(
    const UpdateRequest& request, const ParallelOptions& options) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before applying updates");
  // One snapshot acquire per dispatch: program, stratification, and plan
  // all come off this pin, so the cascade can never observe a torn program
  // version even while an EvolveRules swap is pending elsewhere.
  const std::shared_ptr<const CompiledProgram> snap = Snapshot();
  ParallelUpdateOptions parallel_options;
  parallel_options.scheduler_spec = options.scheduler_spec;
  parallel_options.workers = options.workers;
  parallel_options.router = options.router;
  parallel_options.strategy = options.strategy.value_or(default_strategy_);
  parallel_options.maint_state = &maint_state_;
  parallel_options.frontier = options.frontier;
  parallel_options.epoch = options.epoch;
  parallel_options.plan = &snap->plan;
  parallel_options.memory_budget = options.memory_budget;
  parallel_options.account = options.account;
  return ::dsched::datalog::ApplyParallel(snap->program, snap->strat, store_,
                                          request, parallel_options);
}

}  // namespace dsched::datalog
