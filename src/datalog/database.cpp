#include "datalog/database.hpp"

#include "datalog/eval.hpp"
#include "datalog/parallel_update.hpp"
#include "datalog/validate.hpp"
#include "util/error.hpp"

namespace dsched::datalog {

Database::Database(std::string_view program_text)
    : program_(ParseProgram(program_text)) {
  ValidateProgram(program_);
  strat_ = Stratify(program_);
  plan_ = BuildPipelinePlan(program_, strat_);
  store_ = RelationStore(program_);
}

void Database::Insert(std::string_view predicate, Tuple tuple) {
  DSCHED_CHECK_MSG(!materialized_,
                   "use MakeUpdate()/Apply() after materialization");
  const std::uint32_t pred = program_.PredicateId(predicate);
  if (tuple.size() != program_.predicate_arities[pred]) {
    throw util::InvalidArgument("arity mismatch inserting into '" +
                                std::string(predicate) + "'");
  }
  store_.Of(pred).Insert(tuple);
}

EvalStats Database::Materialize() {
  const EvalStats stats = EvaluateProgram(program_, strat_, store_);
  materialized_ = true;
  return stats;
}

std::vector<Tuple> Database::Query(std::string_view predicate) const {
  return store_.Of(program_.PredicateId(predicate)).Tuples();
}

bool Database::Contains(std::string_view predicate, const Tuple& tuple) const {
  return store_.Of(program_.PredicateId(predicate)).Contains(tuple);
}

Database::Update& Database::Update::Insert(std::string_view predicate,
                                           Tuple tuple) {
  request_.insertions.emplace_back(db_->program_.PredicateId(predicate),
                                   std::move(tuple));
  return *this;
}

Database::Update& Database::Update::Delete(std::string_view predicate,
                                           Tuple tuple) {
  request_.deletions.emplace_back(db_->program_.PredicateId(predicate),
                                  std::move(tuple));
  return *this;
}

UpdateResult Database::Apply(const Update& update) {
  return ApplyRequest(update.request_, default_strategy_);
}

UpdateResult Database::AddRules(std::string_view rules_text) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before changing rules");
  // Stage on a copy so failures leave this database untouched.
  Program candidate = program_;
  const std::size_t old_rule_count = candidate.rules.size();
  ExtendProgram(candidate, rules_text);
  ValidateProgram(candidate);
  Stratification new_strat = Stratify(candidate);

  program_ = std::move(candidate);
  strat_ = std::move(new_strat);
  plan_ = BuildPipelinePlan(program_, strat_);
  store_.EnsurePredicates(program_);
  // Derivation counts are rule-set-relative; force a recount on the next
  // counting update even if this change leaves the store untouched.
  maint_state_.counts_ready = false;

  // Seed: every new rule's direct derivations against the current state,
  // injected as if they were base insertions of the head predicate.  The
  // propagation rounds complete recursive fixpoints and cascade downstream
  // (including destructive effects through negation).  Aggregate heads are
  // regenerated wholesale by their recompute-diff phase, so forcing their
  // component is enough.
  GroupedBaseChanges base;
  base.insertions.resize(program_.NumPredicates());
  base.deletions.resize(program_.NumPredicates());
  std::vector<bool> force(strat_.NumComponents(), false);
  EvalStats scratch;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (std::size_t r = old_rule_count; r < program_.rules.size(); ++r) {
    const Rule& rule = program_.rules[r];
    force[strat_.component_of[rule.head.predicate]] = true;
    if (rule.IsAggregate()) {
      continue;
    }
    ApplyRule(program_, store_, rule, DeltaRestriction{}, scratch, collect);
    auto& sink = base.insertions[rule.head.predicate];
    for (Tuple& t : buffer) {
      sink.push_back(std::move(t));
    }
    buffer.clear();
  }
  return PropagateUpdate(program_, strat_, store_, base, &force);
}

UpdateResult Database::RemoveRule(std::string_view clause_text) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before changing rules");
  const Rule target = ParseSingleClause(program_, clause_text);
  std::size_t index = program_.rules.size();
  for (std::size_t r = 0; r < program_.rules.size(); ++r) {
    if (RulesEquivalent(program_.rules[r], target)) {
      index = r;
      break;
    }
  }
  if (index == program_.rules.size()) {
    throw util::InvalidArgument("no such rule in the program: " +
                                std::string(clause_text));
  }

  // The removed rule's current derivations are exactly the support it
  // contributed to the fixpoint; inject them as base deletions so DRed
  // overdeletes and then rederives whatever the remaining rules sustain.
  GroupedBaseChanges base;
  base.insertions.resize(program_.NumPredicates());
  base.deletions.resize(program_.NumPredicates());
  const Rule removed = program_.rules[index];
  EvalStats scratch;
  if (removed.IsAggregate()) {
    // Recompute-diff regenerates the whole head relation; no seed needed.
  } else {
    std::vector<Tuple> buffer;
    const std::function<void(const Tuple&)> collect =
        [&buffer](const Tuple& t) { buffer.push_back(t); };
    ApplyRule(program_, store_, removed, DeltaRestriction{}, scratch, collect);
    base.deletions[removed.head.predicate] = std::move(buffer);
  }

  program_.rules.erase(program_.rules.begin() +
                       static_cast<std::ptrdiff_t>(index));
  ValidateProgram(program_);
  strat_ = Stratify(program_);
  plan_ = BuildPipelinePlan(program_, strat_);
  maint_state_.counts_ready = false;
  std::vector<bool> force(strat_.NumComponents(), false);
  force[strat_.component_of[removed.head.predicate]] = true;
  return PropagateUpdate(program_, strat_, store_, base, &force);
}

UpdateResult Database::ApplyParallel(const Update& update,
                                     const ParallelOptions& options) {
  return ApplyRequestParallel(update.request_, options).update;
}

UpdateResult Database::ApplyRequest(const UpdateRequest& request) {
  return ApplyRequest(request, default_strategy_);
}

UpdateResult Database::ApplyRequest(const UpdateRequest& request,
                                    MaintenanceStrategy strategy) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before applying updates");
  return PropagateUpdateWithStrategy(program_, strat_, store_,
                                     GroupedBaseChanges(program_, request),
                                     strategy, &maint_state_);
}

ParallelUpdateResult Database::ApplyRequestParallel(
    const UpdateRequest& request, const ParallelOptions& options) {
  DSCHED_CHECK_MSG(materialized_, "Materialize() before applying updates");
  ParallelUpdateOptions parallel_options;
  parallel_options.scheduler_spec = options.scheduler_spec;
  parallel_options.workers = options.workers;
  parallel_options.router = options.router;
  parallel_options.strategy = options.strategy.value_or(default_strategy_);
  parallel_options.maint_state = &maint_state_;
  parallel_options.frontier = options.frontier;
  parallel_options.epoch = options.epoch;
  parallel_options.plan = &plan_;
  parallel_options.memory_budget = options.memory_budget;
  parallel_options.account = options.account;
  return ::dsched::datalog::ApplyParallel(program_, strat_, store_, request,
                                          parallel_options);
}

}  // namespace dsched::datalog
