#include "datalog/incremental.hpp"

#include <sstream>
#include <unordered_set>

#include "datalog/delta_buffer.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::datalog {

namespace {
using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
}  // namespace

OldStateView::OldStateView(const RelationStore& live,
                           const std::vector<PredicateDelta>& net,
                           const std::vector<std::uint32_t>& relevant)
    : live_(live),
      inserted_(net.size()),
      extras_(net.size()),
      extras_set_(net.size()) {
  for (const std::uint32_t p : relevant) {
    for (const Tuple& t : net[p].inserted) {
      inserted_[p].insert(t);
    }
    for (const Tuple& t : net[p].deleted) {
      if (extras_set_[p].insert(t).second) {
        extras_[p].push_back(t);
      }
    }
  }
}

void OldStateView::AddDeletedExtra(std::uint32_t predicate,
                                   const Tuple& tuple) {
  if (extras_set_[predicate].insert(tuple).second) {
    extras_[predicate].push_back(tuple);
  }
}

bool OldStateView::ContainsTuple(std::uint32_t predicate,
                                 RowView tuple) const {
  if (live_.Of(predicate).Contains(tuple)) {
    return inserted_[predicate].empty() ||
           !inserted_[predicate].contains(tuple);
  }
  return extras_set_[predicate].contains(tuple);
}

RowView OldStateView::RowAt(std::uint32_t predicate,
                            std::uint32_t row) const {
  if ((row & Relation::kExtraBit) != 0) {
    return extras_[predicate][row & ~Relation::kExtraBit];
  }
  return live_.Of(predicate).Row(row);
}

OldStateView::PreparedIndex OldStateView::Prepare(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  return {predicate, &columns, live_.Prepare(predicate, columns)};
}

std::vector<std::uint32_t> OldStateView::LookupPrepared(
    const PreparedIndex& prepared, const Tuple& key) const {
  const std::uint32_t predicate = prepared.predicate;
  const std::vector<std::size_t>& columns = *prepared.columns;
  std::vector<std::uint32_t> out;
  const TupleSet& inserted = inserted_[predicate];
  const auto live_ids = RelationStore::LookupPrepared(prepared.live, key);
  out.reserve(live_ids.size());
  for (const std::uint32_t id : live_ids) {
    if (inserted.empty() || !inserted.contains(live_.RowAt(predicate, id))) {
      out.push_back(id);
    }
  }
  const auto& extras = extras_[predicate];
  for (std::size_t i = 0; i < extras.size(); ++i) {
    bool match = true;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (!(extras[i][columns[c]] == key[c])) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(Relation::kExtraBit | static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

std::vector<std::uint32_t> OldStateView::Lookup(
    std::uint32_t predicate, const std::vector<std::size_t>& columns,
    const Tuple& key) const {
  return LookupPrepared(Prepare(predicate, columns), key);
}

std::size_t OldStateView::RelationSize(std::uint32_t predicate) const {
  return live_.Of(predicate).Size() + extras_[predicate].size();
}

std::size_t OldStateView::IndexDistinct(
    std::uint32_t predicate, const std::vector<std::size_t>& columns) const {
  return live_.IndexDistinct(predicate, columns);
}

std::string UpdateResult::ToString(const Program& program,
                                   const Stratification& strat) const {
  std::ostringstream oss;
  oss << "update: +" << total_inserted << " -" << total_deleted << " in "
      << seconds << "s\n";
  for (const ComponentUpdateStats& c : components) {
    if (!c.input_changed) {
      continue;
    }
    oss << "  component " << c.component << " {";
    for (std::size_t i = 0; i < strat.component_members[c.component].size();
         ++i) {
      if (i > 0) {
        oss << ", ";
      }
      oss << program.predicate_names[strat.component_members[c.component][i]];
    }
    oss << "}: " << (c.output_changed ? "changed" : "unchanged")
        << " +" << c.tuples_inserted << " -" << c.tuples_deleted
        << " (overdeleted " << c.tuples_overdeleted << ", rederived "
        << c.tuples_rederived << ")\n";
  }
  return oss.str();
}

GroupedBaseChanges::GroupedBaseChanges(const Program& program,
                                       const UpdateRequest& request)
    : insertions(program.NumPredicates()), deletions(program.NumPredicates()) {
  for (const auto& [pred, tuple] : request.insertions) {
    DSCHED_CHECK_MSG(pred < program.NumPredicates(), "unknown predicate id");
    insertions[pred].push_back(tuple);
  }
  for (const auto& [pred, tuple] : request.deletions) {
    DSCHED_CHECK_MSG(pred < program.NumPredicates(), "unknown predicate id");
    deletions[pred].push_back(tuple);
  }
}

bool ComponentInputTouched(const Program& program, const Stratification& strat,
                           std::uint32_t component,
                           const GroupedBaseChanges& base,
                           const std::vector<PredicateDelta>& net) {
  for (const std::uint32_t p : strat.component_members[component]) {
    if (!base.insertions[p].empty() || !base.deletions[p].empty()) {
      return true;
    }
  }
  for (const std::size_t r : strat.component_rules[component]) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        const std::uint32_t p = literal->atom.predicate;
        if (strat.component_of[p] != component && !net[p].Empty()) {
          return true;
        }
      }
    }
  }
  return false;
}

ComponentUpdateStats RunComponentPhase(const Program& program,
                                       const Stratification& strat,
                                       std::uint32_t component,
                                       RelationStore& store,
                                       const GroupedBaseChanges& base,
                                       std::vector<PredicateDelta>& net,
                                       StoreWriteBuffer* scratch) {
  util::WallTimer comp_timer;
  ComponentUpdateStats comp_stats;
  comp_stats.component = component;
  comp_stats.input_changed = true;  // caller gates on ComponentInputTouched
  const auto& members = strat.component_members[component];
  const auto& rule_ids = strat.component_rules[component];

  std::vector<bool> is_member(program.NumPredicates(), false);
  for (const std::uint32_t p : members) {
    is_member[p] = true;
  }

  // ---------------------------------------------------------------- 0.
  // Aggregate components are maintained by recompute-and-diff: the body
  // lives strictly below (stratification), so re-folding against the new
  // state and diffing against the stored relation is exact — and cheap,
  // since it touches only this predicate's groups.
  if (!rule_ids.empty() && program.rules[rule_ids.front()].IsAggregate()) {
    DSCHED_CHECK_MSG(members.size() == 1,
                     "aggregate components are singletons by stratification");
    const std::uint32_t p = members.front();
    TupleSet fresh;
    for (const std::size_t r : rule_ids) {
      for (Tuple& t : EvaluateAggregateRule(program, store, program.rules[r],
                                            comp_stats.eval)) {
        fresh.insert(std::move(t));
      }
    }
    Relation& relation = store.Of(p);
    std::vector<Tuple> stale;
    relation.ForEachRow([&fresh, &stale](std::uint32_t, RowView row) {
      if (!fresh.contains(row)) {
        stale.emplace_back(row.begin(), row.end());
      }
    });
    for (const Tuple& t : stale) {
      relation.Erase(t);
      net[p].deleted.push_back(t);
    }
    for (const Tuple& t : fresh) {
      if (relation.Insert(t)) {
        net[p].inserted.push_back(t);
      }
    }
    comp_stats.tuples_inserted = net[p].inserted.size();
    comp_stats.tuples_deleted = net[p].deleted.size();
    comp_stats.output_changed =
        comp_stats.tuples_inserted > 0 || comp_stats.tuples_deleted > 0;
    comp_stats.seconds = comp_timer.ElapsedSeconds();
    return comp_stats;
  }

  // Per-member bookkeeping of what this phase actually adds/removes.
  // (Indexed by predicate; only member slots are touched.)
  std::vector<TupleSet> phase_deleted(program.NumPredicates());
  std::vector<TupleSet> phase_inserted(program.NumPredicates());

  // The pre-update state this phase's overdeletion joins against: the live
  // store corrected by the finalized deltas of exactly the predicates this
  // phase may read, growing member extras as the phase erases tuples.  No
  // database snapshot is taken.
  std::vector<std::uint32_t> relevant(members.begin(), members.end());
  for (const std::size_t r : rule_ids) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        if (!is_member[literal->atom.predicate]) {
          relevant.push_back(literal->atom.predicate);
        }
      }
    }
  }
  OldStateView old_state(store, net, relevant);

  // ---------------------------------------------------------------- 1.
  // OVERDELETE.  Seed D with (a) base deletions of member predicates and
  // (b) heads of rules fired with a deleted positive input or an inserted
  // negated input, all joined against the OLD state.
  DeltaMap overdelete;  // per member predicate, this round's delta
  const auto queue_overdeleted = [&](std::uint32_t pred, const Tuple& t) {
    if (phase_deleted[pred].insert(t).second) {
      overdelete[pred].push_back(t);
      old_state.AddDeletedExtra(pred, t);
      store.Of(pred).Erase(t);
      ++comp_stats.tuples_overdeleted;
    }
  };
  for (const std::uint32_t p : members) {
    for (const Tuple& t : base.deletions[p]) {
      if (old_state.ContainsTuple(p, t)) {
        queue_overdeleted(p, t);
      }
    }
  }
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (const std::size_t r : rule_ids) {
    const Rule& rule = program.rules[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const auto* literal = std::get_if<Literal>(&rule.body[i]);
      if (literal == nullptr) {
        continue;
      }
      const std::uint32_t p = literal->atom.predicate;
      if (is_member[p]) {
        continue;  // internal support flows through the rounds below
      }
      const std::vector<Tuple>& rows =
          literal->negated ? net[p].inserted : net[p].deleted;
      if (rows.empty()) {
        continue;
      }
      DeltaRestriction restriction;
      restriction.body_index = i;
      restriction.rows = rows;
      ApplyRuleOldState(program, old_state, rule, restriction,
                        comp_stats.eval, collect);
      for (const Tuple& t : buffer) {
        queue_overdeleted(rule.head.predicate, t);
      }
      buffer.clear();
    }
  }
  // Internal overdeletion rounds (member tuples supporting member tuples).
  while (true) {
    DeltaMap current = std::move(overdelete);
    overdelete.clear();
    bool any = false;
    for (const auto& [pred, rows] : current) {
      if (!rows.empty()) {
        any = true;
      }
    }
    if (!any) {
      break;
    }
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        if (literal == nullptr || literal->negated ||
            !is_member[literal->atom.predicate]) {
          continue;
        }
        const auto it = current.find(literal->atom.predicate);
        if (it == current.end() || it->second.empty()) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = it->second;
        ApplyRuleOldState(program, old_state, rule, restriction,
                          comp_stats.eval, collect);
        for (const Tuple& t : buffer) {
          queue_overdeleted(rule.head.predicate, t);
        }
        buffer.clear();
      }
    }
  }

  // ---------------------------------------------------------------- 2.
  // REDERIVE: an overdeleted tuple still derivable in the NEW state comes
  // back (and later propagates through the insertion rounds).
  DeltaMap member_seed;
  for (const std::uint32_t p : members) {
    for (const Tuple& t : phase_deleted[p]) {
      bool derivable = false;
      for (const std::size_t r : rule_ids) {
        const Rule& rule = program.rules[r];
        if (rule.head.predicate != p) {
          continue;
        }
        if (IsDerivable(program, store, rule, t, comp_stats.eval)) {
          derivable = true;
          break;
        }
      }
      if (derivable) {
        store.Of(p).Insert(t);
        phase_inserted[p].insert(t);
        member_seed[p].push_back(t);
        ++comp_stats.tuples_rederived;
      }
    }
  }

  // ---------------------------------------------------------------- 3.
  // Negation-driven insertions: a deletion from a negated lower predicate
  // can create brand-new derivations in the NEW state.
  for (const std::size_t r : rule_ids) {
    const Rule& rule = program.rules[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const auto* literal = std::get_if<Literal>(&rule.body[i]);
      if (literal == nullptr || !literal->negated) {
        continue;
      }
      const std::uint32_t p = literal->atom.predicate;
      if (net[p].deleted.empty()) {
        continue;
      }
      DeltaRestriction restriction;
      restriction.body_index = i;
      restriction.rows = net[p].deleted;
      ApplyRule(program, store, rule, restriction, comp_stats.eval, collect);
      for (const Tuple& t : buffer) {
        if (store.Of(rule.head.predicate).Insert(t)) {
          phase_inserted[rule.head.predicate].insert(t);
          member_seed[rule.head.predicate].push_back(t);
        }
      }
      buffer.clear();
    }
  }

  // ---------------------------------------------------------------- 4.
  // Insertions: base inserts into members + lower net insertions, then the
  // semi-naive continuation.  With a worker scratch buffer the inserts go
  // through the lock-free shard-publication protocol — staged per shard,
  // one atomic append each, outcomes harvested at Flush — instead of the
  // direct mutator.  The overdeletion path above stays direct on purpose:
  // its erases must be visible to the old-state view immediately, or a
  // tuple would be found both live and as a deleted extra.
  for (const std::uint32_t p : members) {
    if (base.insertions[p].empty()) {
      continue;
    }
    if (scratch != nullptr) {
      ShardedWriteBuffer& writes = scratch->For(store, p);
      for (const Tuple& t : base.insertions[p]) {
        writes.StageInsert(t);
      }
      writes.Flush([&phase_inserted, &member_seed, p](std::uint8_t,
                                                      RowView row,
                                                      bool fresh) {
        if (fresh) {
          Tuple t(row.begin(), row.end());
          phase_inserted[p].insert(t);
          member_seed[p].push_back(std::move(t));
        }
      });
    } else {
      for (const Tuple& t : base.insertions[p]) {
        if (store.Of(p).Insert(t)) {
          phase_inserted[p].insert(t);
          member_seed[p].push_back(t);
        }
      }
    }
  }
  DeltaMap seed = member_seed;
  for (const std::size_t r : rule_ids) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        const std::uint32_t p = literal->atom.predicate;
        if (!is_member[p] && !literal->negated && !net[p].inserted.empty() &&
            !seed.contains(p)) {
          seed[p] = net[p].inserted;
        }
      }
    }
  }
  DeltaMap derived;
  comp_stats.eval.Merge(
      EvaluateComponent(program, strat, component, store, &seed, &derived));
  for (auto& [pred, rows] : derived) {
    for (Tuple& t : rows) {
      phase_inserted[pred].insert(std::move(t));
    }
  }

  // ---------------------------------------------------------------- 5.
  // Finalize the member entries of `net` for downstream components.
  for (const std::uint32_t p : members) {
    for (const Tuple& t : phase_inserted[p]) {
      if (!phase_deleted[p].contains(t)) {
        net[p].inserted.push_back(t);
      }
    }
    for (const Tuple& t : phase_deleted[p]) {
      if (!phase_inserted[p].contains(t)) {
        net[p].deleted.push_back(t);
      }
    }
    comp_stats.tuples_inserted += net[p].inserted.size();
    comp_stats.tuples_deleted += net[p].deleted.size();
  }
  comp_stats.output_changed =
      comp_stats.tuples_inserted > 0 || comp_stats.tuples_deleted > 0;
  // DRed's deletion-pipeline effort: one erase per overdeleted tuple, at
  // least one derivability check each, one re-insert per rederived tuple.
  // Rule-less components are pure base-change application — every
  // strategy does that identical work, so it reports no maintenance ops.
  if (!rule_ids.empty()) {
    comp_stats.maint_ops =
        2 * comp_stats.tuples_overdeleted + comp_stats.tuples_rederived;
  }
  comp_stats.seconds = comp_timer.ElapsedSeconds();
  return comp_stats;
}

UpdateResult PropagateUpdate(const Program& program,
                             const Stratification& strat, RelationStore& store,
                             const GroupedBaseChanges& base,
                             const std::vector<bool>* force_touched) {
  util::WallTimer total_timer;
  UpdateResult result;
  std::vector<PredicateDelta> net(program.NumPredicates());

  for (const std::uint32_t component : strat.component_order) {
    const bool forced =
        force_touched != nullptr && (*force_touched)[component];
    if (!forced &&
        !ComponentInputTouched(program, strat, component, base, net)) {
      ComponentUpdateStats untouched;
      untouched.component = component;
      result.components.push_back(untouched);
      continue;
    }
    ComponentUpdateStats comp_stats =
        RunComponentPhase(program, strat, component, store, base, net);
    result.total_inserted += comp_stats.tuples_inserted;
    result.total_deleted += comp_stats.tuples_deleted;
    result.total_maint_ops += comp_stats.maint_ops;
    result.components.push_back(std::move(comp_stats));
  }

  result.seconds = total_timer.ElapsedSeconds();
  return result;
}

IncrementalEngine::IncrementalEngine(const Program& program,
                                     const Stratification& strat,
                                     RelationStore& store)
    : program_(program), strat_(strat), store_(store) {}

UpdateResult IncrementalEngine::Apply(const UpdateRequest& request) {
  return PropagateUpdate(program_, strat_, store_,
                         GroupedBaseChanges(program_, request));
}

}  // namespace dsched::datalog
