// Tokenizer for the Datalog surface syntax.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsched::datalog {

enum class TokenKind : std::uint8_t {
  kIdentifier,   // lowercase-leading: predicate or symbol constant
  kVariable,     // uppercase- or '_'-leading
  kNumber,       // decimal integer, optional leading '-'
  kString,       // "quoted symbol"
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kPeriod,       // .
  kSemicolon,    // ; (separates group-by terms from the aggregate)
  kImplies,      // :-
  kBang,         // !
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kEnd,          // end of input
};

/// Name of a token kind, for diagnostics.
[[nodiscard]] const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/variable/number/string payload
  std::size_t line = 0;   // 1-based source line
};

/// Tokenizes the whole input ('%' starts a line comment).  Throws
/// util::ParseError on illegal characters.
[[nodiscard]] std::vector<Token> Tokenize(std::string_view source);

}  // namespace dsched::datalog
