#include "datalog/parallel_update.hpp"

#include <algorithm>

#include "datalog/delta_buffer.hpp"
#include "graph/digraph_builder.hpp"
#include "sched/factory.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::datalog {

ParallelUpdateResult ApplyParallel(const Program& program,
                                   const Stratification& strat,
                                   RelationStore& store,
                                   const UpdateRequest& request,
                                   const ParallelUpdateOptions& options) {
  DSCHED_CHECK_MSG(options.scheduler_spec.find("oracle") == std::string::npos,
                   "the clairvoyant oracle cannot drive a live update — it "
                   "needs the outcome in advance");
  util::WallTimer total_timer;
  const std::size_t num_preds = program.NumPredicates();
  const std::size_t num_comps = strat.NumComponents();

  // --- Node layout: predicate collectors first, then one task node per
  // component that owns rules.  Rule-less components are singleton base
  // predicates; their collector doubles as the phase-running task.
  std::vector<util::TaskId> component_node(num_comps, util::kInvalidTask);
  std::size_t next_node = num_preds;
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    if (!strat.component_rules[c].empty()) {
      component_node[c] = static_cast<util::TaskId>(next_node++);
    }
  }
  const std::size_t num_nodes = next_node;

  graph::DigraphBuilder builder(num_nodes);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    const util::TaskId task = component_node[c];
    if (task == util::kInvalidTask) {
      continue;
    }
    for (const std::uint32_t p : strat.component_members[c]) {
      builder.AddEdge(task, static_cast<util::TaskId>(p));
    }
    for (const std::size_t r : strat.component_rules[c]) {
      for (const BodyElement& element : program.rules[r].body) {
        if (const auto* literal = std::get_if<Literal>(&element)) {
          const std::uint32_t p = literal->atom.predicate;
          if (strat.component_of[p] != c) {
            builder.AddEdge(static_cast<util::TaskId>(p), task);
          }
        }
      }
    }
  }

  // --- Static node info.  Change bits are irrelevant: the executor asks
  // the task bodies at runtime — exactly the paper's dynamic model.
  std::vector<trace::TaskInfo> infos(num_nodes);
  for (std::size_t p = 0; p < num_preds; ++p) {
    infos[p].kind = trace::NodeKind::kCollector;
    infos[p].work = 0.0;
    infos[p].span = 0.0;
  }

  // --- Initially dirty: base-touched predicates (their component task when
  // rules are involved).
  const GroupedBaseChanges base(program, request);
  std::vector<util::TaskId> dirty;
  for (std::size_t p = 0; p < num_preds; ++p) {
    if (base.insertions[p].empty() && base.deletions[p].empty()) {
      continue;
    }
    const std::uint32_t c = strat.component_of[p];
    dirty.push_back(component_node[c] == util::kInvalidTask
                        ? static_cast<util::TaskId>(p)
                        : component_node[c]);
  }

  // --- Per-task resource utility, the accounting plane's estimate: each
  // phase-running node carries sum over its component's member predicates
  // of arity x estimated delta cardinality x sizeof(Value).  Base-touched
  // members use the exact batch counts; derived members estimate an
  // eighth of their current materialisation (floor 1 row) — the executor
  // acquires this on dispatch and releases it on completion, which is
  // what session memory ceilings and the meta-scheduler's kill rule
  // meter.  Derived-predicate collectors only forward a flag, so they
  // stay at zero.
  const auto estimated_delta = [&](std::uint32_t p) -> std::uint64_t {
    const std::uint64_t touched = static_cast<std::uint64_t>(
        base.insertions[p].size() + base.deletions[p].size());
    return touched != 0 ? touched : 1 + store.Of(p).Size() / 8;
  };
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    std::uint64_t bytes = 0;
    for (const std::uint32_t p : strat.component_members[c]) {
      bytes += static_cast<std::uint64_t>(program.predicate_arities[p]) *
               estimated_delta(p) * sizeof(Value);
    }
    const util::TaskId node =
        component_node[c] != util::kInvalidTask
            ? component_node[c]
            : static_cast<util::TaskId>(strat.component_members[c].front());
    infos[node].resource_utility = bytes;
  }

  ParallelUpdateResult result;
  result.trace = trace::JobTrace("parallel-update", std::move(builder).Build(),
                                 std::move(infos), std::move(dirty));

  // --- Shared (but phase-disjoint) update state.
  std::vector<PredicateDelta> net(num_preds);
  std::vector<ComponentUpdateStats> stats(num_comps);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    stats[c].component = c;
  }
  // Per-predicate net-changed flags (uint8_t: adjacent elements must not
  // share a byte the way vector<bool> bits would).
  std::vector<std::uint8_t> pred_changed(num_preds, 0);

  // One write buffer per executor worker: a phase stages its base inserts
  // per shard and publishes them lock-free (see delta_buffer.hpp).  Buffers
  // are indexed by the worker running the task, so each is single-owner —
  // on a shared router that means one buffer per POOL worker, since worker
  // indices span the router's pool.
  const std::size_t num_workers = options.router != nullptr
                                      ? options.router->NumWorkers()
                                      : std::max<std::size_t>(options.workers, 1);
  std::vector<StoreWriteBuffer> scratch(num_workers);
  for (StoreWriteBuffer& buffer : scratch) {
    buffer.SetEpoch(options.epoch);
  }

  // Counting needs exact pre-update derivation counts; initialize (or
  // validate) them serially before the executor starts.
  MaintenanceState transient_state;
  MaintenanceState* maint_state = options.maint_state != nullptr
                                      ? options.maint_state
                                      : &transient_state;
  if (options.strategy == MaintenanceStrategy::kCounting) {
    EnsureCountingState(program, strat, store, *maint_state);
  }

  const auto run_phase = [&](std::uint32_t c, std::size_t worker) -> bool {
    stats[c] = RunMaintenancePhase(options.strategy, program, strat, c, store,
                                   base, net, &scratch[worker], maint_state);
    bool changed = false;
    for (const std::uint32_t p : strat.component_members[c]) {
      if (!net[p].Empty()) {
        pred_changed[p] = 1;
        changed = true;
      }
    }
    return changed;
  };

  std::vector<std::uint32_t> node_component(num_nodes, 0);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    if (component_node[c] != util::kInvalidTask) {
      node_component[component_node[c]] = c;
    }
  }

  // --- Epoch-pipeline gate: per-node levels and fences from the plan.
  // Component tasks (and the collectors of rule-less components, which run
  // the phase themselves) carry the component's fence; derived-predicate
  // collectors only forward a flag computed by their own epoch's task, so
  // they never wait.
  runtime::PipelineGate gate;
  std::vector<std::uint32_t> node_level;
  std::vector<std::uint32_t> node_fence;
  const bool gated = options.frontier != nullptr && options.plan != nullptr;
  if (gated) {
    const PipelinePlan& plan = *options.plan;
    node_level.assign(num_nodes, 0);
    node_fence.assign(num_nodes, 0);
    for (std::size_t p = 0; p < num_preds; ++p) {
      const std::uint32_t c = strat.component_of[p];
      node_level[p] = plan.component_level[c];
      node_fence[p] = component_node[c] == util::kInvalidTask
                          ? plan.component_fence[c]
                          : 0;
    }
    for (std::uint32_t c = 0; c < num_comps; ++c) {
      if (component_node[c] != util::kInvalidTask) {
        node_level[component_node[c]] = plan.component_level[c];
        node_fence[component_node[c]] = plan.component_fence[c];
      }
    }
    gate.frontier = options.frontier;
    gate.epoch = options.epoch;
    gate.node_level = &node_level;
    gate.node_fence = &node_fence;
    gate.num_levels = plan.num_levels;
  }

  auto scheduler = sched::CreateScheduler(options.scheduler_spec);
  const runtime::Executor::WorkerTaskBody task_body(
      [&](util::TaskId t, std::size_t worker) -> bool {
        if (t >= num_preds) {
          return run_phase(node_component[t], worker);
        }
        const auto p = static_cast<std::uint32_t>(t);
        const std::uint32_t c = strat.component_of[p];
        if (component_node[c] == util::kInvalidTask) {
          // Rule-less base predicate: the collector runs the phase
          // itself.
          return run_phase(c, worker);
        }
        // Derived predicate collector: forward the owner's verdict.
        return pred_changed[p] != 0;
      });
  const runtime::PipelineGate* gate_ptr = gated ? &gate : nullptr;
  result.run =
      options.router != nullptr
          ? runtime::Executor::RunOn(*options.router, result.trace, *scheduler,
                                     task_body,
                                     {.gate = gate_ptr,
                                      .memory_budget = options.memory_budget,
                                      .account = options.account})
          : runtime::Executor::Run(result.trace, *scheduler, task_body,
                                   {.workers = options.workers,
                                    .gate = gate_ptr,
                                    .memory_budget = options.memory_budget,
                                    .account = options.account});

  if (options.strategy == MaintenanceStrategy::kCounting) {
    SealCountingState(store, *maint_state);
  }

  // --- Assemble the sequential-compatible result.
  for (const std::uint32_t c : strat.component_order) {
    result.update.total_inserted += stats[c].tuples_inserted;
    result.update.total_deleted += stats[c].tuples_deleted;
    result.update.total_maint_ops += stats[c].maint_ops;
    result.update.components.push_back(std::move(stats[c]));
  }
  result.update.seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace dsched::datalog
