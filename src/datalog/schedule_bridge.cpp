#include "datalog/schedule_bridge.hpp"

#include <algorithm>

#include "graph/digraph_builder.hpp"
#include "util/error.hpp"

namespace dsched::datalog {

UpdateTrace BuildUpdateTrace(const Program& program,
                             const Stratification& strat,
                             const UpdateRequest& request,
                             const UpdateResult& result,
                             std::string trace_name) {
  DSCHED_CHECK_MSG(result.components.size() == strat.NumComponents(),
                   "update result does not match the stratification");
  UpdateTrace out;
  const std::size_t num_preds = program.NumPredicates();
  const std::size_t num_comps = strat.NumComponents();

  // --- Node layout: predicates first, then one task node per component
  // that actually owns rules.
  out.predicate_node.resize(num_preds);
  for (std::size_t p = 0; p < num_preds; ++p) {
    out.predicate_node[p] = static_cast<util::TaskId>(p);
  }
  out.component_node.assign(num_comps, util::kInvalidTask);
  std::size_t next_node = num_preds;
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    if (!strat.component_rules[c].empty()) {
      out.component_node[c] = static_cast<util::TaskId>(next_node++);
    }
  }
  const std::size_t num_nodes = next_node;

  graph::DigraphBuilder builder(num_nodes);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    const util::TaskId task = out.component_node[c];
    if (task == util::kInvalidTask) {
      continue;
    }
    // component → member predicates.
    for (const std::uint32_t p : strat.component_members[c]) {
      builder.AddEdge(task, out.predicate_node[p]);
    }
    // external body predicates → component.
    for (const std::size_t r : strat.component_rules[c]) {
      for (const BodyElement& element : program.rules[r].body) {
        if (const auto* literal = std::get_if<Literal>(&element)) {
          const std::uint32_t p = literal->atom.predicate;
          if (strat.component_of[p] != c) {
            builder.AddEdge(out.predicate_node[p], task);
          }
        }
      }
    }
  }

  // --- Per-node info.
  std::vector<trace::TaskInfo> infos(num_nodes);
  out.labels.resize(num_nodes);

  // Which predicates net-changed, from the per-component stats?  A
  // component's stats aggregate its members, so attribute change to every
  // member when the component changed (collector granularity — the paper's
  // collectors forward any member change).
  std::vector<bool> pred_changed(num_preds, false);
  std::vector<bool> comp_changed(num_comps, false);
  std::vector<const ComponentUpdateStats*> stats_of(num_comps, nullptr);
  for (const ComponentUpdateStats& cs : result.components) {
    DSCHED_CHECK(cs.component < num_comps);
    stats_of[cs.component] = &cs;
    comp_changed[cs.component] = cs.output_changed;
    if (cs.output_changed) {
      for (const std::uint32_t p : strat.component_members[cs.component]) {
        pred_changed[p] = true;
      }
    }
  }

  for (std::size_t p = 0; p < num_preds; ++p) {
    trace::TaskInfo& info = infos[p];
    info.kind = trace::NodeKind::kCollector;
    info.work = 0.0;
    info.span = 0.0;
    info.output_changes = pred_changed[p];
    out.labels[p] = program.predicate_names[p];
  }
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    const util::TaskId task = out.component_node[c];
    if (task == util::kInvalidTask) {
      continue;
    }
    DSCHED_CHECK_MSG(stats_of[c] != nullptr,
                     "missing update stats for a rule component");
    const ComponentUpdateStats& cs = *stats_of[c];
    trace::TaskInfo& info = infos[task];
    info.kind = trace::NodeKind::kTask;
    // Measured evaluation time; floor at a microsecond so untouched
    // components still cost something if a pessimistic scheduler runs them.
    info.work = std::max(cs.seconds, 1e-6);
    info.span = info.work;
    info.output_changes = comp_changed[c];
    std::string label = "eval{";
    for (std::size_t i = 0; i < strat.component_members[c].size(); ++i) {
      if (i > 0) {
        label += ",";
      }
      label += program.predicate_names[strat.component_members[c][i]];
    }
    label += "}";
    out.labels[task] = label;
  }

  // --- Initially dirty: base predicates the request touches, plus the task
  // nodes of components whose *members* the request touches directly.
  std::vector<util::TaskId> dirty;
  std::vector<bool> pred_touched(num_preds, false);
  for (const auto& [pred, tuple] : request.insertions) {
    (void)tuple;
    pred_touched[pred] = true;
  }
  for (const auto& [pred, tuple] : request.deletions) {
    (void)tuple;
    pred_touched[pred] = true;
  }
  for (std::size_t p = 0; p < num_preds; ++p) {
    if (!pred_touched[p]) {
      continue;
    }
    const std::uint32_t c = strat.component_of[p];
    if (out.component_node[c] == util::kInvalidTask) {
      dirty.push_back(out.predicate_node[p]);
    } else {
      // Base change to a predicate that also has rules: the evaluation task
      // itself is dirtied (it must reconcile the change).
      dirty.push_back(out.component_node[c]);
    }
  }

  out.trace = trace::JobTrace(std::move(trace_name), std::move(builder).Build(),
                              std::move(infos), std::move(dirty));
  return out;
}

}  // namespace dsched::datalog
