#include "datalog/maintenance.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "datalog/delta_buffer.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::datalog {

namespace {
using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
}  // namespace

const char* MaintenanceStrategyName(MaintenanceStrategy s) {
  switch (s) {
    case MaintenanceStrategy::kDRed:
      return "dred";
    case MaintenanceStrategy::kCounting:
      return "counting";
    case MaintenanceStrategy::kBackwardForward:
      return "bf";
  }
  return "dred";
}

const std::vector<std::string>& KnownMaintenanceStrategies() {
  static const std::vector<std::string> kNames = {"dred", "counting", "bf"};
  return kNames;
}

MaintenanceStrategy ParseMaintenanceStrategy(const std::string& name) {
  if (name == "dred") {
    return MaintenanceStrategy::kDRed;
  }
  if (name == "counting") {
    return MaintenanceStrategy::kCounting;
  }
  if (name == "bf") {
    return MaintenanceStrategy::kBackwardForward;
  }
  std::ostringstream oss;
  oss << "unknown maintenance strategy '" << name << "'; valid values:";
  for (const std::string& known : KnownMaintenanceStrategies()) {
    oss << " " << known;
  }
  throw util::ParseError(oss.str());
}

bool StrategyPipelineEligible(MaintenanceStrategy s) {
  return s != MaintenanceStrategy::kCounting;
}

bool CountingEligible(const Program& program, const Stratification& strat,
                      std::uint32_t component) {
  const auto& rule_ids = strat.component_rules[component];
  if (rule_ids.empty() || strat.component_recursive[component]) {
    return false;
  }
  for (const std::size_t r : rule_ids) {
    if (program.rules[r].IsAggregate()) {
      return false;
    }
  }
  // A nonrecursive SCC is a singleton; counting relies on that (the
  // recount joins must not read the predicate being recounted).
  return strat.component_members[component].size() == 1;
}

namespace {

std::uint64_t StoreFingerprint(const RelationStore& store) {
  std::uint64_t fp = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    fp += store.Of(static_cast<std::uint32_t>(p)).Version();
  }
  return fp;
}

}  // namespace

void MarkCountingStale(MaintenanceState& state,
                       const std::vector<bool>& affected) {
  if (state.stale_counts.size() < affected.size()) {
    state.stale_counts.resize(affected.size(), 0);
  }
  for (std::size_t p = 0; p < affected.size(); ++p) {
    if (affected[p]) {
      state.stale_counts[p] = 1;
      state.any_stale = true;
    }
  }
}

void EnsureCountingState(const Program& program, const Stratification& strat,
                         RelationStore& store, MaintenanceState& state) {
  const std::uint64_t fp = StoreFingerprint(store);
  // Scoped pass: the fingerprint still matches (no store mutation since the
  // last seal) but a rule evolution marked the affected cone's counts as
  // rule-set-stale — recount just those predicates.  Everything outside the
  // cone kept both its store contents and its rule set, so its counts are
  // still exact.
  const bool scoped =
      state.counts_ready && fp == state.counts_fingerprint && state.any_stale;
  if (state.counts_ready && fp == state.counts_fingerprint && !state.any_stale) {
    return;
  }
  if (scoped) {
    if (state.base_facts.size() < program.NumPredicates()) {
      state.base_facts.resize(program.NumPredicates());
    }
  } else {
    state.base_facts.assign(program.NumPredicates(), {});
  }
  EvalStats discard;
  for (std::uint32_t c = 0; c < strat.NumComponents(); ++c) {
    if (!CountingEligible(program, strat, c)) {
      continue;
    }
    const std::uint32_t p = strat.component_members[c].front();
    if (scoped &&
        (p >= state.stale_counts.size() || state.stale_counts[p] == 0)) {
      continue;
    }
    if (scoped) {
      // Replay the full-init semantics for this one predicate: flags are
      // re-inferred below, so drop any left from the pre-evolution rules.
      state.base_facts[p].clear();
    }
    Relation& relation = store.Of(p);
    std::vector<Tuple> tuples;
    tuples.reserve(relation.Size());
    relation.ForEachRow([&tuples](std::uint32_t, RowView row) {
      tuples.emplace_back(row.begin(), row.end());
    });
    for (const Tuple& t : tuples) {
      std::uint64_t n = 0;
      for (const std::size_t r : strat.component_rules[c]) {
        n += CountDerivations(program, store, program.rules[r], t, discard);
      }
      if (n == 0) {
        // Present but underivable: asserted directly at some point.  The
        // shadow base flag keeps it alive through recounts, exactly the
        // way plain presence keeps it alive under DRed.
        state.base_facts[p].insert(t);
        n = 1;
      }
      const auto delta = static_cast<std::int64_t>(n) -
                         static_cast<std::int64_t>(relation.CountOf(t));
      if (delta != 0) {
        relation.AdjustCount(t, static_cast<std::int32_t>(delta));
      }
    }
  }
  state.stale_counts.clear();
  state.any_stale = false;
  state.counts_ready = true;
  state.counts_fingerprint = StoreFingerprint(store);
}

void SealCountingState(const RelationStore& store, MaintenanceState& state) {
  state.counts_fingerprint = StoreFingerprint(store);
  state.counts_ready = true;
}

bool CountingStateFresh(const RelationStore& store,
                        const MaintenanceState& state) {
  return state.counts_ready &&
         state.counts_fingerprint == StoreFingerprint(store);
}

namespace {

// ------------------------------------------------------------------ Counting

/// The counting phase of one eligible (nonrecursive, singleton,
/// non-aggregate) component.  Computes the affected-head set H from the
/// lower net deltas and the base changes, recounts each head against the
/// new store (absolute recount — immune to the double-count a
/// per-instance increment would suffer when one rule instance contains
/// two changed body tuples), and applies the count deltas through the
/// store's count column.  A tuple's membership changes only when its
/// count crosses zero, so redundant-support deletions never touch the
/// store's membership at all.
ComponentUpdateStats RunCountingPhase(const Program& program,
                                      const Stratification& strat,
                                      std::uint32_t component,
                                      RelationStore& store,
                                      const GroupedBaseChanges& base,
                                      std::vector<PredicateDelta>& net,
                                      StoreWriteBuffer* scratch,
                                      MaintenanceState& state) {
  util::WallTimer comp_timer;
  ComponentUpdateStats comp_stats;
  comp_stats.component = component;
  comp_stats.input_changed = true;
  const std::uint32_t p = strat.component_members[component].front();
  const auto& rule_ids = strat.component_rules[component];

  // Old-state view over the phase's read set, for the instances an update
  // DESTROYED (deleted positive / inserted negated support).
  std::vector<std::uint32_t> relevant{p};
  for (const std::size_t r : rule_ids) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        relevant.push_back(literal->atom.predicate);
      }
    }
  }
  const OldStateView old_state(store, net, relevant);

  // --- Affected heads: every tuple whose derivation count may have moved.
  // An instance disappeared iff it existed in the OLD state and used a
  // deleted positive (or inserted negated) lower tuple; an instance
  // appeared iff it exists in the NEW state and uses an inserted positive
  // (or deleted negated) one.  The restricted joins enumerate exactly
  // those; over-approximation is harmless (recount is absolute).
  TupleSet affected;
  // The destroy-driven subset: heads that may have LOST support.  Only
  // their recounts are maintenance ops — create-driven recounts are the
  // insertion pipeline, which every strategy's maint_ops excludes (DRed's
  // semi-naive continuation is likewise uncounted).
  TupleSet destroy_affected;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  const auto drain_into_affected = [&affected, &destroy_affected,
                                    &buffer](bool destroy) {
    for (Tuple& t : buffer) {
      if (destroy) {
        destroy_affected.insert(t);
      }
      affected.insert(std::move(t));
    }
    buffer.clear();
  };
  for (const std::size_t r : rule_ids) {
    const Rule& rule = program.rules[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const auto* literal = std::get_if<Literal>(&rule.body[i]);
      if (literal == nullptr) {
        continue;
      }
      const std::uint32_t lower = literal->atom.predicate;
      const std::vector<Tuple>& destroys =
          literal->negated ? net[lower].inserted : net[lower].deleted;
      const std::vector<Tuple>& creates =
          literal->negated ? net[lower].deleted : net[lower].inserted;
      if (!destroys.empty()) {
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = destroys;
        ApplyRuleOldState(program, old_state, rule, restriction,
                          comp_stats.eval, collect);
        drain_into_affected(/*destroy=*/true);
      }
      if (!creates.empty()) {
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = creates;
        ApplyRule(program, store, rule, restriction, comp_stats.eval, collect);
        drain_into_affected(/*destroy=*/false);
      }
    }
  }

  // --- Base changes.  The shadow base flag mirrors DRed's effective
  // semantics exactly: a base insert of an ABSENT tuple asserts it (flag
  // on); one of a present tuple is absorbed; a base delete clears the
  // flag, so the tuple survives only on rule support; and a tuple that
  // becomes rule-derivable sheds its flag (DRed keeps no memory of base
  // asserts — once disturbed, only derivability rescues a tuple).
  for (const Tuple& t : base.deletions[p]) {
    state.base_facts[p].erase(t);
    affected.insert(t);
    destroy_affected.insert(t);
  }
  for (const Tuple& t : base.insertions[p]) {
    if (!store.Of(p).Contains(t)) {
      state.base_facts[p].insert(t);
    }
    affected.insert(t);
  }

  // --- Recount every affected head against the new store.  Deltas are
  // collected first and applied after: the recount joins never read `p`
  // (nonrecursive), so deferred application cannot skew them.
  std::vector<std::pair<Tuple, std::int32_t>> adjustments;
  for (const Tuple& t : affected) {
    std::uint64_t rule_count = 0;
    for (const std::size_t r : rule_ids) {
      rule_count +=
          CountDerivations(program, store, program.rules[r], t, comp_stats.eval);
    }
    if (rule_count > 0) {
      state.base_facts[p].erase(t);
    }
    const std::uint64_t new_count =
        rule_count + (state.base_facts[p].contains(t) ? 1 : 0);
    const std::uint32_t old_count = store.Of(p).CountOf(t);
    if (destroy_affected.contains(t)) {
      // Create-only heads are insertion-pipeline work and stay uncounted,
      // like DRed's semi-naive continuation.
      ++comp_stats.maint_recounts;
      if (old_count > 0 && new_count > 0 && new_count < old_count) {
        // DRed would have overdeleted this tuple and rederived it;
        // counting just moves the count.
        ++comp_stats.maint_avoided;
      }
    }
    const auto delta = static_cast<std::int64_t>(new_count) -
                       static_cast<std::int64_t>(old_count);
    if (delta != 0) {
      adjustments.emplace_back(t, static_cast<std::int32_t>(delta));
    }
  }
  OBS_COUNTER(Category::kMaintRecount, comp_stats.maint_recounts);
  OBS_COUNTER(Category::kMaintOverdeleteAvoided, comp_stats.maint_avoided);

  // --- Apply.  With a worker scratch buffer the adjustments ride the
  // same lock-free DeltaChunk publication as inserts (kOpAdjust entries);
  // otherwise the direct mutator.  Either way the store reports the
  // membership outcome per row: kBorn / kDied are the only net changes.
  const auto on_outcome = [&net, p](RowView row, std::uint8_t code) {
    if (code == Relation::kBorn) {
      net[p].inserted.emplace_back(row.begin(), row.end());
    } else if (code == Relation::kDied) {
      net[p].deleted.emplace_back(row.begin(), row.end());
    }
  };
  if (scratch != nullptr) {
    ShardedWriteBuffer& writes = scratch->For(store, p);
    for (const auto& [t, delta] : adjustments) {
      writes.StageAdjust(t, delta);
    }
    writes.FlushCodes([&on_outcome](std::uint8_t, RowView row,
                                    std::uint8_t code) { on_outcome(row, code); });
  } else {
    for (const auto& [t, delta] : adjustments) {
      on_outcome(t, store.Of(p).AdjustCount(t, delta));
    }
  }

  comp_stats.tuples_inserted = net[p].inserted.size();
  comp_stats.tuples_deleted = net[p].deleted.size();
  comp_stats.output_changed =
      comp_stats.tuples_inserted > 0 || comp_stats.tuples_deleted > 0;
  // Counting's deletion-pipeline effort: one recount per head that may
  // have lost support, one erase per count that crossed zero.  Births and
  // create-driven recounts are the insertion side, excluded everywhere.
  comp_stats.maint_ops =
      comp_stats.maint_recounts + comp_stats.tuples_deleted;
  comp_stats.seconds = comp_timer.ElapsedSeconds();
  return comp_stats;
}

// ------------------------------------------------------------ Backward/Forward

/// Aliveness verdicts during the backward phase.  Absence from the mark
/// map means "not yet probed".
enum class Mark : std::uint8_t { kInStack, kAlive, kDead };

/// The backward-phase DFS.  A suspect tuple is alive iff some rule
/// instance derives it whose member supports are all alive; non-suspect
/// supports are alive by construction — the suspect set is closed under
/// consumption before any probe runs, so a tuple outside it has no
/// derivation touching anything that might die — and lower supports are
/// read from the live store, which already holds the new state.  The
/// in-stack check prunes cyclic proof attempts: a tuple with any
/// derivation has a repeat-free one (a repeated tuple on a proof path
/// can be spliced out), so exploring only repeat-free paths from the root
/// is complete.
///
/// Memoization protocol: kAlive memos are always sound (the proof found
/// is self-contained).  kDead is recorded only when every derivation
/// failed CLEANLY (no in-stack ancestor involved) — an unclean failure
/// only proves the tuple unprovable on the CURRENT path, so the mark is
/// reverted to unknown and the tuple is re-probed as its own root, where
/// the repeat-free argument makes the verdict final.
struct BackwardProber {
  const Program& program;
  const RelationStore& store;
  const std::vector<bool>& is_member;
  const std::unordered_map<std::uint32_t, std::vector<std::size_t>>&
      rules_by_head;
  std::vector<TupleSet>& suspects;
  std::vector<std::unordered_map<Tuple, Mark, TupleHash, TupleEq>>& marks;
  std::vector<std::pair<std::uint32_t, Tuple>>& deaths;
  ComponentUpdateStats& stats;

  bool CheckAlive(std::uint32_t pred, const Tuple& t, bool& clean) {
    auto& pred_marks = marks[pred];
    const auto it = pred_marks.find(t);
    if (it != pred_marks.end()) {
      if (it->second == Mark::kAlive) {
        return true;
      }
      if (it->second == Mark::kDead) {
        return false;
      }
      clean = false;  // in-stack ancestor: this path is cyclic
      return false;
    }
    pred_marks.emplace(t, Mark::kInStack);
    ++stats.maint_backward_probes;
    OBS_COUNTER(Category::kMaintBackwardProbe, 1);

    bool alive = false;
    bool all_clean = true;
    const auto rules_it = rules_by_head.find(pred);
    if (rules_it != rules_by_head.end()) {
      for (const std::size_t r : rules_it->second) {
        const Rule& rule = program.rules[r];
        const bool found = ForEachDerivation(
            program, store, rule, t, stats.eval,
            [this, &all_clean](
                const std::vector<std::pair<std::uint32_t, Tuple>>& body)
                -> bool {
              for (const auto& [bp, bt] : body) {
                if (!is_member[bp] || !suspects[bp].contains(bt)) {
                  continue;  // lower or untouched: alive by construction
                }
                bool sub_clean = true;
                if (!CheckAlive(bp, bt, sub_clean)) {
                  if (!sub_clean) {
                    all_clean = false;
                  }
                  return false;  // this derivation fails; keep enumerating
                }
              }
              return true;  // every support alive: live derivation, stop
            });
        if (found) {
          alive = true;
          break;
        }
      }
    }
    if (alive) {
      marks[pred][t] = Mark::kAlive;
      return true;
    }
    if (all_clean) {
      marks[pred][t] = Mark::kDead;
      deaths.emplace_back(pred, t);
      return false;
    }
    marks[pred].erase(t);  // unprovable here, maybe provable as a root
    clean = false;
    return false;
  }
};

/// The Backward/Forward phase of one rule-owning, non-aggregate
/// component.  B: seed the suspect set (tuples that lost an old-state
/// derivation), close it under live-store consumption (marking only),
/// prove each suspect alive or dead via backward probes, and only then
/// erase the proven-dead rows — DRed's overdelete/rederive round-trip
/// never happens.  F: DRed's insertion pipeline verbatim
/// (negation-driven inserts, base inserts, semi-naive continuation),
/// which is identical across strategies.
ComponentUpdateStats RunBackwardForwardPhase(const Program& program,
                                             const Stratification& strat,
                                             std::uint32_t component,
                                             RelationStore& store,
                                             const GroupedBaseChanges& base,
                                             std::vector<PredicateDelta>& net,
                                             StoreWriteBuffer* scratch) {
  util::WallTimer comp_timer;
  ComponentUpdateStats comp_stats;
  comp_stats.component = component;
  comp_stats.input_changed = true;
  const auto& members = strat.component_members[component];
  const auto& rule_ids = strat.component_rules[component];

  std::vector<bool> is_member(program.NumPredicates(), false);
  for (const std::uint32_t p : members) {
    is_member[p] = true;
  }
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> rules_by_head;
  for (const std::size_t r : rule_ids) {
    rules_by_head[program.rules[r].head.predicate].push_back(r);
  }

  // Old state for the seed joins.  The backward phase defers every erase,
  // so member relations stay physically old until the suspect set is
  // fully resolved — no extras ever accrue.
  std::vector<std::uint32_t> relevant(members.begin(), members.end());
  for (const std::size_t r : rule_ids) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        if (!is_member[literal->atom.predicate]) {
          relevant.push_back(literal->atom.predicate);
        }
      }
    }
  }
  const OldStateView old_state(store, net, relevant);

  // --- B.1: seed the suspect set with every member tuple that lost an
  // old-state derivation (same seeds DRed overdeletes from) plus the base
  // deletions.
  std::vector<TupleSet> suspects(program.NumPredicates());
  std::vector<std::pair<std::uint32_t, Tuple>> worklist;
  const auto add_suspect = [&](std::uint32_t pred, const Tuple& t) {
    if (!store.Of(pred).Contains(t)) {
      return;  // only present tuples can die
    }
    if (suspects[pred].insert(t).second) {
      worklist.emplace_back(pred, t);
    }
  };
  for (const std::uint32_t p : members) {
    for (const Tuple& t : base.deletions[p]) {
      add_suspect(p, t);
    }
  }
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (const std::size_t r : rule_ids) {
    const Rule& rule = program.rules[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const auto* literal = std::get_if<Literal>(&rule.body[i]);
      if (literal == nullptr || is_member[literal->atom.predicate]) {
        continue;  // internal support is handled by the B.2 closure
      }
      const std::uint32_t lower = literal->atom.predicate;
      const std::vector<Tuple>& rows =
          literal->negated ? net[lower].inserted : net[lower].deleted;
      if (rows.empty()) {
        continue;
      }
      DeltaRestriction restriction;
      restriction.body_index = i;
      restriction.rows = rows;
      ApplyRuleOldState(program, old_state, rule, restriction, comp_stats.eval,
                        collect);
      for (const Tuple& t : buffer) {
        add_suspect(rule.head.predicate, t);
      }
      buffer.clear();
    }
  }

  // --- B.2: close the suspect set under consumption.  Any tuple with a
  // live-store derivation through a suspect might lose it, so it is
  // suspect too — transitively.  This is DRed's overdeletion closure
  // reduced to MARKING: nothing is deleted and nothing is rederived.
  // The closure is what makes the prober's "non-suspect support is
  // alive" shortcut sound: cyclically-supported clusters (a recursive
  // component's hallmark) all land in the suspect set together instead
  // of vouching for each other from outside it.
  std::size_t wi = 0;
  while (wi < worklist.size()) {
    const auto [sp, st] = worklist[wi++];  // copy: the list grows below
    const std::span<const Tuple> suspect_row(&st, 1);
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        // Member literals are never negated (stratification).
        if (literal == nullptr || literal->atom.predicate != sp ||
            literal->negated) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = suspect_row;
        // Live store: the aliveness probes run over it, so its instance
        // graph is the one whose consumers are at risk.  Erases are all
        // deferred, so every at-risk instance is still visible here.
        ApplyRule(program, store, rule, restriction, comp_stats.eval,
                  collect);
        for (const Tuple& h : buffer) {
          add_suspect(rule.head.predicate, h);
        }
        buffer.clear();
      }
    }
  }

  // --- B.3: probe every suspect.  Verdicts are final: an alive proof
  // grounds out in non-suspect (hence untouched) or lower supports, and a
  // dead verdict means every repeat-free path failed.
  std::vector<std::unordered_map<Tuple, Mark, TupleHash, TupleEq>> marks(
      program.NumPredicates());
  std::vector<std::pair<std::uint32_t, Tuple>> deaths;
  BackwardProber prober{program,  store, is_member, rules_by_head,
                        suspects, marks, deaths,    comp_stats};
  for (const auto& [p, t] : worklist) {
    if (marks[p].contains(t)) {
      continue;  // settled while proving another suspect
    }
    bool clean = true;
    if (!prober.CheckAlive(p, t, clean) && !clean) {
      // Unclean failure AT THE ROOT is final: live tuples have
      // repeat-free derivations, and the root's probe explored exactly
      // the repeat-free paths.
      marks[p][t] = Mark::kDead;
      deaths.emplace_back(p, t);
    }
  }

  // --- B.4: erase the proven dead.  This is the ONLY store mutation of
  // the backward phase.
  std::vector<TupleSet> phase_deleted(program.NumPredicates());
  for (const auto& [p, t] : deaths) {
    if (phase_deleted[p].insert(t).second) {
      store.Of(p).Erase(t);
    }
  }
  std::size_t alive_suspects = 0;
  for (const std::uint32_t p : members) {
    for (const auto& [t, mark] : marks[p]) {
      if (mark == Mark::kAlive) {
        ++alive_suspects;
      }
    }
  }
  comp_stats.maint_avoided = alive_suspects;  // DRed's overdelete+rederive set
  OBS_COUNTER(Category::kMaintOverdeleteAvoided, comp_stats.maint_avoided);

  // --- F: DRed's insertion pipeline, verbatim (incremental.cpp steps
  // 3-5).  Deletions from negated lower predicates create derivations;
  // base inserts and lower insertions seed the semi-naive continuation.
  std::vector<TupleSet> phase_inserted(program.NumPredicates());
  DeltaMap member_seed;
  for (const std::size_t r : rule_ids) {
    const Rule& rule = program.rules[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const auto* literal = std::get_if<Literal>(&rule.body[i]);
      if (literal == nullptr || !literal->negated) {
        continue;
      }
      const std::uint32_t lower = literal->atom.predicate;
      if (net[lower].deleted.empty()) {
        continue;
      }
      DeltaRestriction restriction;
      restriction.body_index = i;
      restriction.rows = net[lower].deleted;
      ApplyRule(program, store, rule, restriction, comp_stats.eval, collect);
      for (const Tuple& t : buffer) {
        if (store.Of(rule.head.predicate).Insert(t)) {
          phase_inserted[rule.head.predicate].insert(t);
          member_seed[rule.head.predicate].push_back(t);
        }
      }
      buffer.clear();
    }
  }
  for (const std::uint32_t p : members) {
    if (base.insertions[p].empty()) {
      continue;
    }
    if (scratch != nullptr) {
      ShardedWriteBuffer& writes = scratch->For(store, p);
      for (const Tuple& t : base.insertions[p]) {
        writes.StageInsert(t);
      }
      writes.Flush([&phase_inserted, &member_seed, p](std::uint8_t,
                                                      RowView row,
                                                      bool fresh) {
        if (fresh) {
          Tuple t(row.begin(), row.end());
          phase_inserted[p].insert(t);
          member_seed[p].push_back(std::move(t));
        }
      });
    } else {
      for (const Tuple& t : base.insertions[p]) {
        if (store.Of(p).Insert(t)) {
          phase_inserted[p].insert(t);
          member_seed[p].push_back(t);
        }
      }
    }
  }
  DeltaMap seed = member_seed;
  for (const std::size_t r : rule_ids) {
    for (const BodyElement& element : program.rules[r].body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        const std::uint32_t lower = literal->atom.predicate;
        if (!is_member[lower] && !literal->negated &&
            !net[lower].inserted.empty() && !seed.contains(lower)) {
          seed[lower] = net[lower].inserted;
        }
      }
    }
  }
  DeltaMap derived;
  comp_stats.eval.Merge(
      EvaluateComponent(program, strat, component, store, &seed, &derived));
  for (auto& [pred, rows] : derived) {
    for (Tuple& t : rows) {
      phase_inserted[pred].insert(std::move(t));
    }
  }

  // --- Finalize net, with insert/delete cancellation, like DRed.
  for (const std::uint32_t p : members) {
    for (const Tuple& t : phase_inserted[p]) {
      if (!phase_deleted[p].contains(t)) {
        net[p].inserted.push_back(t);
      }
    }
    for (const Tuple& t : phase_deleted[p]) {
      if (!phase_inserted[p].contains(t)) {
        net[p].deleted.push_back(t);
      }
    }
    comp_stats.tuples_inserted += net[p].inserted.size();
    comp_stats.tuples_deleted += net[p].deleted.size();
  }
  comp_stats.output_changed =
      comp_stats.tuples_inserted > 0 || comp_stats.tuples_deleted > 0;
  // B/F's deletion-pipeline effort: one probe per aliveness question, one
  // erase per proven-dead tuple.
  comp_stats.maint_ops = comp_stats.maint_backward_probes + deaths.size();
  comp_stats.seconds = comp_timer.ElapsedSeconds();
  return comp_stats;
}

}  // namespace

ComponentUpdateStats RunMaintenancePhase(
    MaintenanceStrategy strategy, const Program& program,
    const Stratification& strat, std::uint32_t component, RelationStore& store,
    const GroupedBaseChanges& base, std::vector<PredicateDelta>& net,
    StoreWriteBuffer* scratch, MaintenanceState* state) {
  OBS_SCOPE(Category::kMaintPhase);
  const auto& rule_ids = strat.component_rules[component];
  switch (strategy) {
    case MaintenanceStrategy::kDRed:
      break;
    case MaintenanceStrategy::kCounting:
      if (state != nullptr && CountingEligible(program, strat, component)) {
        return RunCountingPhase(program, strat, component, store, base, net,
                                scratch, *state);
      }
      break;  // recursive / aggregate / rule-less / stateless: DRed
    case MaintenanceStrategy::kBackwardForward:
      if (!rule_ids.empty() && !program.rules[rule_ids.front()].IsAggregate()) {
        return RunBackwardForwardPhase(program, strat, component, store, base,
                                       net, scratch);
      }
      break;  // aggregate / rule-less: DRed (recompute-diff / base path)
  }
  ComponentUpdateStats comp_stats =
      RunComponentPhase(program, strat, component, store, base, net, scratch);
  OBS_COUNTER(Category::kMaintOverdelete, comp_stats.tuples_overdeleted);
  return comp_stats;
}

UpdateResult PropagateUpdateWithStrategy(
    const Program& program, const Stratification& strat, RelationStore& store,
    const GroupedBaseChanges& base, MaintenanceStrategy strategy,
    MaintenanceState* state, const std::vector<bool>* force_touched,
    const std::vector<bool>* only_components) {
  util::WallTimer total_timer;
  UpdateResult result;
  MaintenanceState transient;
  MaintenanceState* st = state != nullptr ? state : &transient;
  if (strategy == MaintenanceStrategy::kCounting) {
    EnsureCountingState(program, strat, store, *st);
  }
  std::vector<PredicateDelta> net(program.NumPredicates());

  for (const std::uint32_t component : strat.component_order) {
    const bool allowed =
        only_components == nullptr || (*only_components)[component];
    const bool forced =
        force_touched != nullptr && (*force_touched)[component];
    if (!allowed || (!forced &&
        !ComponentInputTouched(program, strat, component, base, net))) {
      ComponentUpdateStats untouched;
      untouched.component = component;
      result.components.push_back(untouched);
      continue;
    }
    ComponentUpdateStats comp_stats = RunMaintenancePhase(
        strategy, program, strat, component, store, base, net, nullptr, st);
    result.total_inserted += comp_stats.tuples_inserted;
    result.total_deleted += comp_stats.tuples_deleted;
    result.total_maint_ops += comp_stats.maint_ops;
    result.components.push_back(std::move(comp_stats));
  }
  if (strategy == MaintenanceStrategy::kCounting) {
    SealCountingState(store, *st);
  }

  result.seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace dsched::datalog
