#include "datalog/ast.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dsched::datalog {

std::uint32_t Program::PredicateId(std::string_view name) const {
  for (std::uint32_t id = 0; id < predicate_names.size(); ++id) {
    if (predicate_names[id] == name) {
      return id;
    }
  }
  throw util::InvalidArgument("unknown predicate '" + std::string(name) + "'");
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "count";
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
  }
  return "?";
}

bool EvalCmp(CmpOp op, Value lhs, Value rhs) {
  if (op == CmpOp::kEq) {
    return lhs == rhs;
  }
  if (op == CmpOp::kNe) {
    return !(lhs == rhs);
  }
  // Ordered comparisons require both sides to be integers.
  if (!lhs.IsInt() || !rhs.IsInt()) {
    throw util::InvalidArgument(
        "ordered comparison requires integer operands");
  }
  const std::int64_t a = lhs.AsInt();
  const std::int64_t b = rhs.AsInt();
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    default:
      return false;  // unreachable; kEq/kNe handled above
  }
}

namespace {
std::string TermToString(const Term& term, const Rule& rule,
                         const Program& program) {
  if (term.IsVar()) {
    if (term.var < rule.variable_names.size()) {
      return rule.variable_names[term.var];
    }
    return "V" + std::to_string(term.var);
  }
  return term.constant.ToString(program.symbols);
}

std::string AtomToString(const Atom& atom, const Rule& rule,
                         const Program& program) {
  std::ostringstream oss;
  oss << program.predicate_names[atom.predicate] << "(";
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << TermToString(atom.args[i], rule, program);
  }
  oss << ")";
  return oss.str();
}
}  // namespace

std::string RuleToString(const Rule& rule, const Program& program) {
  std::ostringstream oss;
  if (rule.IsAggregate()) {
    oss << program.predicate_names[rule.head.predicate] << "(";
    for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
      if (i > 0) {
        oss << ", ";
      }
      oss << TermToString(rule.head.args[i], rule, program);
    }
    oss << "; " << AggOpName(rule.aggregate->op) << "(";
    if (rule.aggregate->op != AggOp::kCount) {
      oss << TermToString(Term::Var(rule.aggregate->var), rule, program);
    }
    oss << "))";
  } else {
    oss << AtomToString(rule.head, rule, program);
  }
  if (!rule.body.empty()) {
    oss << " :- ";
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) {
        oss << ", ";
      }
      if (const auto* literal = std::get_if<Literal>(&rule.body[i])) {
        if (literal->negated) {
          oss << "!";
        }
        oss << AtomToString(literal->atom, rule, program);
      } else {
        const auto& cmp = std::get<Comparison>(rule.body[i]);
        oss << TermToString(cmp.lhs, rule, program) << " " << CmpOpName(cmp.op)
            << " " << TermToString(cmp.rhs, rule, program);
      }
    }
  }
  oss << ".";
  return oss.str();
}

}  // namespace dsched::datalog
