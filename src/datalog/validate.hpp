// Static validation of parsed programs: safety / range restriction.
//
// Rules must satisfy:
//  * every head variable occurs in a positive body literal;
//  * every variable in a negated literal occurs in a positive literal;
//  * every variable in a comparison occurs in a positive literal;
//  * facts (empty-body rules) are ground.
// These guarantee bottom-up evaluation binds every variable before it is
// needed and derived relations stay finite.
#pragma once

#include "datalog/ast.hpp"

namespace dsched::datalog {

/// Throws util::InvalidArgument naming the offending rule/variable when a
/// rule is unsafe; returns normally otherwise.
void ValidateProgram(const Program& program);

}  // namespace dsched::datalog
