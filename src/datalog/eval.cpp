#include "datalog/eval.hpp"

#include "datalog/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::datalog {

void EvalStats::Merge(const EvalStats& other) {
  rule_applications += other.rule_applications;
  bindings_explored += other.bindings_explored;
  tuples_derived += other.tuples_derived;
  tuples_inserted += other.tuples_inserted;
  rounds += other.rounds;
  index_probes += other.index_probes;
  index_misses += other.index_misses;
}

std::string EvalStats::ToString() const {
  std::ostringstream oss;
  oss << "applications=" << rule_applications
      << " bindings=" << bindings_explored << " derived=" << tuples_derived
      << " inserted=" << tuples_inserted << " rounds=" << rounds
      << " probes=" << index_probes << " misses=" << index_misses;
  return oss.str();
}

void EvalStats::ExportMetrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.Set(prefix + "rule_applications", rule_applications);
  registry.Set(prefix + "bindings_explored", bindings_explored);
  registry.Set(prefix + "tuples_derived", tuples_derived);
  registry.Set(prefix + "tuples_inserted", tuples_inserted);
  registry.Set(prefix + "rounds", rounds);
  registry.Set(prefix + "index_probes", index_probes);
  registry.Set(prefix + "index_misses", index_misses);
}

namespace {

/// One rule application: nested-loop join with index lookups, run over an
/// explicit binding environment.  TStore is any type with the read
/// interface ContainsTuple / RowAt / Lookup / RelationSize / IndexDistinct
/// — the live RelationStore or the incremental engine's OldStateView.
///
/// Construction plans the join:
///  * positive body literals are ordered greedily by estimated lookup
///    cardinality (relation size ÷ bound-column index fan-out when a fresh
///    index exists, an independence-assumption power law otherwise), with
///    the delta-restricted literal pinned first;
///  * each level's index key columns are fixed statically, so the per-row
///    inner loop neither rebuilds column lists nor re-derives which
///    variables to bind — it fills a reusable key buffer and walks a
///    precomputed (position, variable) slot list;
///  * negations and comparisons are hoisted to the earliest level at which
///    all their variables are bound, pruning partial bindings instead of
///    filtering complete ones.
template <typename TStore>
class RuleJoin {
 public:
  RuleJoin(const Program& program, const TStore& store,
           const Rule& rule, const DeltaRestriction& restriction,
           EvalStats& stats)
      : program_(program),
        store_(store),
        rule_(rule),
        restriction_(restriction),
        stats_(stats),
        bindings_(rule.variable_names.size()),
        bound_(rule.variable_names.size(), 0),
        head_(rule.head.args.size()) {
    OBS_SCOPE(Category::kJoinPlan);
    undo_.reserve(rule.variable_names.size());

    // Split the body: the restricted element (if any) joins first; then
    // the remaining positive literals, planner-ordered; negations and
    // comparisons become filters hoisted onto the levels.
    std::vector<std::size_t> positives;
    std::vector<std::size_t> filters;
    std::vector<char> sbound(rule.variable_names.size(), 0);
    for (std::size_t i = 0; i < rule_.body.size(); ++i) {
      const bool restricted = (i == restriction_.body_index);
      if (const auto* literal = std::get_if<Literal>(&rule_.body[i])) {
        if (restricted) {
          // Positive or negated: matched against the delta rows, first.
          // Its slots are planned statically like an indexed level with an
          // empty key: constants become value checks, variable occurrences
          // fresh binds or repeat checks.
          LevelPlan delta;
          delta.body_index = i;
          delta.is_delta = true;
          delta.atom = &literal->atom;
          std::vector<char> seen(rule.variable_names.size(), 0);
          for (std::size_t pos = 0; pos < literal->atom.args.size(); ++pos) {
            const Term& term = literal->atom.args[pos];
            if (!term.IsVar()) {
              delta.const_slots.emplace_back(pos, term.constant);
            } else {
              const bool check =
                  sbound[term.var] != 0 || seen[term.var] != 0;
              delta.var_slots.push_back({pos, term.var, check});
              seen[term.var] = 1;
            }
          }
          levels_.push_back(std::move(delta));
          MarkVars(literal->atom, sbound);
        } else if (!literal->negated) {
          positives.push_back(i);
        } else {
          filters.push_back(i);
        }
      } else {
        DSCHED_CHECK_MSG(!restricted,
                         "a comparison cannot carry a delta restriction");
        filters.push_back(i);
      }
    }

    // Greedy selectivity ordering over the static bound-variable set.
    while (!positives.empty()) {
      std::size_t best = 0;
      double best_cost = EstimateCost(AtomAt(positives[0]), sbound);
      for (std::size_t c = 1; c < positives.size(); ++c) {
        const double cost = EstimateCost(AtomAt(positives[c]), sbound);
        if (cost < best_cost) {
          best_cost = cost;
          best = c;
        }
      }
      const std::size_t body_index = positives[best];
      positives.erase(positives.begin() + static_cast<std::ptrdiff_t>(best));
      levels_.push_back(PlanLevel(body_index, sbound));
      MarkVars(AtomAt(body_index), sbound);
    }

    // Hoist each filter to the earliest point all its variables are bound.
    // (Safety validation guarantees every filter variable occurs in some
    // positive literal, so placement always succeeds.)
    std::vector<char> hoist_bound(rule.variable_names.size(), 0);
    std::size_t placed_through = 0;  // filters placeable before any level
    for (const std::size_t f : filters) {
      if (FilterVarsBound(f, hoist_bound)) {
        pre_filters_.push_back(f);
        ++placed_through;
      }
    }
    for (LevelPlan& level : levels_) {
      MarkVars(*level.atom, hoist_bound);
      if (placed_through == filters.size()) {
        continue;
      }
      for (const std::size_t f : filters) {
        if (!FilterPlaced(f) && FilterVarsBound(f, hoist_bound)) {
          level.filters.push_back(f);
          ++placed_through;
        }
      }
    }

    // Resolve each indexed level's cache entry once — the per-binding hot
    // path then probes lock-free.  Done after all levels are planned:
    // Prepare retains a pointer to level.columns, which must not move.
    for (LevelPlan& level : levels_) {
      if (!level.is_delta) {
        level.prepared = store_.Prepare(level.atom->predicate, level.columns);
      }
    }

    // Head plan: constants are baked into the reusable buffer once;
    // EmitHead fills only the variable positions.
    for (std::size_t i = 0; i < rule_.head.args.size(); ++i) {
      const Term& term = rule_.head.args[i];
      if (term.IsVar()) {
        head_vars_.emplace_back(i, term.var);
      } else {
        head_[i] = term.constant;
      }
    }

    // Innermost-level fast path: eligible when the last level is indexed,
    // filter-free, and all-fresh (every probed row emits).
    if (!levels_.empty()) {
      LevelPlan& leaf = levels_.back();
      bool fresh = !leaf.is_delta && leaf.filters.empty();
      for (const auto& slot : leaf.var_slots) {
        fresh = fresh && !slot.check;
      }
      if (fresh) {
        leaf.leaf_fast = true;
        for (const auto& [dst, var] : head_vars_) {
          bool from_row = false;
          for (const auto& slot : leaf.var_slots) {
            if (slot.var == var) {
              leaf.leaf_head_row.emplace_back(dst, slot.pos);
              from_row = true;
              break;
            }
          }
          if (!from_row) {
            leaf.leaf_head_outer.emplace_back(dst, var);
          }
        }
      }
    }
  }

  /// Runs the join; emit is called per derived head tuple.  If
  /// `stop_after_first`, returns true as soon as one derivation succeeds.
  bool Run(const std::function<void(const Tuple&)>& emit,
           bool stop_after_first) {
    OBS_SCOPE(Category::kJoinProbe);
    ++stats_.rule_applications;
    const std::uint64_t derived_before = stats_.tuples_derived;
    emit_ = &emit;
    stop_after_first_ = stop_after_first;
    for (const std::size_t f : pre_filters_) {
      if (!Filter(f)) {
        return false;
      }
    }
    const bool found = JoinFrom(0);
    OBS_COUNTER(Category::kJoinEmit,
                stats_.tuples_derived - derived_before);
    return found;
  }

  /// Runs the join like Run(), but additionally stops (unwinding cleanly)
  /// as soon as `*stop_flag` reads true after an emission — the device
  /// behind ForEachDerivation's conditional early exit, which plain
  /// stop_after_first cannot express.
  bool RunUntil(const std::function<void(const Tuple&)>& emit,
                const bool* stop_flag) {
    stop_flag_ = stop_flag;
    const bool found = Run(emit, /*stop_after_first=*/false);
    stop_flag_ = nullptr;
    return found;
  }

  /// Materializes the ground positive body literals of the current complete
  /// binding as (predicate, tuple) pairs, in body order.  Only meaningful
  /// inside an emit callback.
  void GroundPositiveBody(
      std::vector<std::pair<std::uint32_t, Tuple>>& out) const {
    out.clear();
    for (const BodyElement& element : rule_.body) {
      const auto* literal = std::get_if<Literal>(&element);
      if (literal == nullptr || literal->negated) {
        continue;
      }
      Tuple t(literal->atom.args.size());
      for (std::size_t i = 0; i < t.size(); ++i) {
        const Term& term = literal->atom.args[i];
        t[i] = term.IsVar() ? bindings_[term.var] : term.constant;
      }
      out.emplace_back(literal->atom.predicate, std::move(t));
    }
  }

  /// Pre-binds head variables against a ground head tuple (rederivation
  /// queries).  Returns false if constants clash.
  bool BindHead(const Tuple& head_tuple) {
    DSCHED_CHECK_MSG(head_tuple.size() == rule_.head.args.size(),
                     "head tuple arity mismatch");
    head_bound_ = true;
    for (std::size_t i = 0; i < head_tuple.size(); ++i) {
      const Term& term = rule_.head.args[i];
      if (term.IsVar()) {
        if (bound_[term.var] != 0) {
          if (!(bindings_[term.var] == head_tuple[i])) {
            return false;
          }
        } else {
          bound_[term.var] = 1;
          bindings_[term.var] = head_tuple[i];
        }
      } else if (!(term.constant == head_tuple[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  /// One join level, fully planned at construction.
  struct LevelPlan {
    std::size_t body_index = 0;
    bool is_delta = false;
    const Atom* atom = nullptr;
    /// Index key columns (constants + statically bound first occurrences).
    std::vector<std::size_t> columns;
    /// Source term per key column (constant or bound variable).
    std::vector<Term> key_terms;
    /// Reusable key buffer, parallel to `columns`.
    Tuple key;
    /// One non-key position to bind or check per row.  `check` is decided
    /// statically: a variable bound by an earlier level or an earlier
    /// occurrence in this literal is compared; otherwise the slot is a
    /// fresh first binding and the hot path just overwrites bindings_
    /// (no bound_ bookkeeping, no undo entry).
    struct VarSlot {
      std::size_t pos;
      std::uint32_t var;
      bool check;
    };
    std::vector<VarSlot> var_slots;
    /// Constant positions of a delta level (indexed levels fold constants
    /// into the key instead).
    std::vector<std::pair<std::size_t, Value>> const_slots;
    /// Filters to evaluate once this level's variables are bound.
    std::vector<std::size_t> filters;
    /// Lock-free probe handle for (atom->predicate, columns).
    typename TStore::PreparedIndex prepared;
    /// Innermost-level fast path (see JoinFrom): true when this is the
    /// last level, it has no filters, and every slot is a fresh bind — so
    /// every indexed row emits, and the head can be written straight from
    /// the row without touching bindings_.
    bool leaf_fast = false;
    /// Head positions sourced from this level's row (dst in head_, column
    /// in the row) and from outer bindings (dst, variable).
    std::vector<std::pair<std::size_t, std::size_t>> leaf_head_row;
    std::vector<std::pair<std::size_t, std::uint32_t>> leaf_head_outer;
  };

  const Atom& AtomAt(std::size_t body_index) const {
    return std::get<Literal>(rule_.body[body_index]).atom;
  }

  static void MarkVars(const Atom& atom, std::vector<char>& bound) {
    for (const Term& term : atom.args) {
      if (term.IsVar()) {
        bound[term.var] = 1;
      }
    }
  }

  /// Estimated rows one index probe into `atom` yields, given the
  /// statically bound variables.  Prefers the real fan-out of an
  /// up-to-date cached index; falls back to |R|^(1 - bound/arity), the
  /// standard attribute-independence assumption.
  double EstimateCost(const Atom& atom, const std::vector<char>& sbound) {
    const auto n = static_cast<double>(store_.RelationSize(atom.predicate));
    if (n == 0.0 || atom.args.empty()) {
      return n;
    }
    std::vector<std::size_t> columns;
    std::vector<char> seen(bound_.size(), 0);
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.IsVar()) {
        columns.push_back(i);
      } else if (sbound[term.var] != 0 && seen[term.var] == 0) {
        columns.push_back(i);
        seen[term.var] = 1;
      }
    }
    if (columns.empty()) {
      return n;
    }
    if (columns.size() == atom.args.size()) {
      return 1.0;  // fully bound: a point probe
    }
    const std::size_t distinct =
        store_.IndexDistinct(atom.predicate, columns);
    if (distinct > 0) {
      return n / static_cast<double>(distinct);
    }
    const double frac = static_cast<double>(columns.size()) /
                        static_cast<double>(atom.args.size());
    return std::pow(n, 1.0 - frac);
  }

  /// Builds the static per-level plan for `body_index` given the variables
  /// bound by earlier levels.  A variable repeated within the literal
  /// contributes only its first occurrence to the key; the index
  /// guarantees key columns match, so only var_slots are re-checked per
  /// row.
  LevelPlan PlanLevel(std::size_t body_index,
                      const std::vector<char>& sbound) {
    LevelPlan level;
    level.body_index = body_index;
    level.atom = &AtomAt(body_index);
    std::vector<char> seen(bound_.size(), 0);
    for (std::size_t i = 0; i < level.atom->args.size(); ++i) {
      const Term& term = level.atom->args[i];
      if (!term.IsVar()) {
        level.columns.push_back(i);
        level.key_terms.push_back(term);
      } else if (sbound[term.var] != 0 && seen[term.var] == 0) {
        level.columns.push_back(i);
        level.key_terms.push_back(term);
        seen[term.var] = 1;
      } else {
        const bool check = sbound[term.var] != 0 || seen[term.var] != 0;
        level.var_slots.push_back({i, term.var, check});
        seen[term.var] = 1;
      }
    }
    level.key.resize(level.columns.size());
    return level;
  }

  [[nodiscard]] bool FilterVarsBound(std::size_t body_index,
                                     const std::vector<char>& bound) const {
    if (const auto* literal = std::get_if<Literal>(&rule_.body[body_index])) {
      for (const Term& term : literal->atom.args) {
        if (term.IsVar() && bound[term.var] == 0) {
          return false;
        }
      }
      return true;
    }
    const auto& cmp = std::get<Comparison>(rule_.body[body_index]);
    return (!cmp.lhs.IsVar() || bound[cmp.lhs.var] != 0) &&
           (!cmp.rhs.IsVar() || bound[cmp.rhs.var] != 0);
  }

  [[nodiscard]] bool FilterPlaced(std::size_t body_index) const {
    for (const std::size_t f : pre_filters_) {
      if (f == body_index) {
        return true;
      }
    }
    for (const LevelPlan& level : levels_) {
      for (const std::size_t f : level.filters) {
        if (f == body_index) {
          return true;
        }
      }
    }
    return false;
  }

  /// Full match of one delta row: constant positions first (no index
  /// pre-matched them), then the planned variable slots.
  bool MatchDelta(const LevelPlan& level, RowView row) {
    for (const auto& [pos, value] : level.const_slots) {
      if (!(value == row[pos])) {
        return false;
      }
    }
    return MatchSlots(level, row);
  }

  /// Binds/checks the non-key positions of one indexed row.  Key columns
  /// are skipped — the index already matched them.  Check slots compare
  /// against bindings_ directly: the planner guarantees their variable was
  /// written by an earlier level or an earlier slot of this loop.  Fresh
  /// slots are a bare store — unless BindHead pre-bound variables, which
  /// invalidates the static classification and forces the dynamic path.
  bool MatchSlots(const LevelPlan& level, RowView row) {
    for (const auto& slot : level.var_slots) {
      const Value v = row[slot.pos];
      if (slot.check) {
        if (!(bindings_[slot.var] == v)) {
          return false;
        }
      } else if (!head_bound_) {
        bindings_[slot.var] = v;
      } else if (bound_[slot.var] != 0) {
        if (!(bindings_[slot.var] == v)) {
          return false;
        }
      } else {
        bound_[slot.var] = 1;
        bindings_[slot.var] = v;
        undo_.push_back(slot.var);
      }
    }
    return true;
  }

  void UnwindTo(std::size_t mark) {
    while (undo_.size() > mark) {
      bound_[undo_.back()] = 0;
      undo_.pop_back();
    }
  }

  /// Ground-evaluates one filter element.
  bool Filter(std::size_t body_index) {
    if (const auto* literal = std::get_if<Literal>(&rule_.body[body_index])) {
      probe_.resize(literal->atom.args.size());
      for (std::size_t i = 0; i < probe_.size(); ++i) {
        const Term& term = literal->atom.args[i];
        probe_[i] = term.IsVar() ? bindings_[term.var] : term.constant;
      }
      const bool present =
          store_.ContainsTuple(literal->atom.predicate, probe_);
      return literal->negated ? !present : present;
    }
    const auto& cmp = std::get<Comparison>(rule_.body[body_index]);
    const Value lhs = cmp.lhs.IsVar() ? bindings_[cmp.lhs.var] : cmp.lhs.constant;
    const Value rhs = cmp.rhs.IsVar() ? bindings_[cmp.rhs.var] : cmp.rhs.constant;
    return EvalCmp(cmp.op, lhs, rhs);
  }

  bool RunFilters(const LevelPlan& level) {
    for (const std::size_t f : level.filters) {
      if (!Filter(f)) {
        return false;
      }
    }
    return true;
  }

  bool EmitHead() {
    for (const auto& [dst, var] : head_vars_) {
      head_[dst] = bindings_[var];
    }
    ++stats_.tuples_derived;
    (*emit_)(head_);
    return stop_after_first_ || (stop_flag_ != nullptr && *stop_flag_);
  }

  /// Returns true when stop_after_first_ and a derivation was found.
  bool JoinFrom(std::size_t k) {
    if (k == levels_.size()) {
      return EmitHead();
    }
    LevelPlan& level = levels_[k];
    const std::size_t undo_mark = undo_.size();

    if (level.is_delta) {
      for (const Tuple& row : restriction_.rows) {
        ++stats_.bindings_explored;
        if (MatchDelta(level, row) && RunFilters(level) &&
            JoinFrom(k + 1)) {
          UnwindTo(undo_mark);
          return true;
        }
        UnwindTo(undo_mark);
      }
      return false;
    }

    for (std::size_t i = 0; i < level.key.size(); ++i) {
      const Term& term = level.key_terms[i];
      level.key[i] = term.IsVar() ? bindings_[term.var] : term.constant;
    }
    if (level.leaf_fast && !stop_after_first_ && !head_bound_) {
      // Innermost all-fresh level: every row emits; the head reads the
      // arena row directly and outer-bound positions are filled once.
      const auto rows = store_.LookupPrepared(level.prepared, level.key);
      ++stats_.index_probes;
      stats_.index_misses += rows.empty() ? 1u : 0u;
      stats_.bindings_explored += rows.size();
      stats_.tuples_derived += rows.size();
      if (!rows.empty()) {
        for (const auto& [dst, var] : level.leaf_head_outer) {
          head_[dst] = bindings_[var];
        }
        for (const std::uint32_t row_id : rows) {
          const RowView row = store_.RowIn(level.prepared, row_id);
          for (const auto& [dst, pos] : level.leaf_head_row) {
            head_[dst] = row[pos];
          }
          (*emit_)(head_);
        }
      }
      return false;
    }
    const auto rows = store_.LookupPrepared(level.prepared, level.key);
    ++stats_.index_probes;
    stats_.index_misses += rows.empty() ? 1u : 0u;
    for (const std::uint32_t row_id : rows) {
      ++stats_.bindings_explored;
      if (MatchSlots(level, store_.RowIn(level.prepared, row_id)) &&
          RunFilters(level) && JoinFrom(k + 1)) {
        UnwindTo(undo_mark);
        return true;
      }
      UnwindTo(undo_mark);
    }
    return false;
  }

  const Program& program_;
  const TStore& store_;
  const Rule& rule_;
  const DeltaRestriction& restriction_;
  EvalStats& stats_;

  std::vector<Value> bindings_;
  std::vector<char> bound_;  ///< dynamic bound set (delta / BindHead paths)
  std::vector<LevelPlan> levels_;
  std::vector<std::size_t> pre_filters_;  ///< ground before any join level
  /// Variable head positions (dst, var); constant positions are prebaked.
  std::vector<std::pair<std::size_t, std::uint32_t>> head_vars_;
  std::vector<std::uint32_t> undo_;       ///< shared bind stack, mark-based
  Tuple head_;                            ///< reusable head buffer
  Tuple probe_;                           ///< reusable negation-probe buffer
  const std::function<void(const Tuple&)>* emit_ = nullptr;
  bool stop_after_first_ = false;
  const bool* stop_flag_ = nullptr;  ///< RunUntil's conditional stop
  bool head_bound_ = false;
};

}  // namespace

void ApplyRule(const Program& program, const RelationStore& store,
               const Rule& rule, const DeltaRestriction& restriction,
               EvalStats& stats,
               const std::function<void(const Tuple&)>& emit) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  RuleJoin<RelationStore> join(program, store, rule, restriction, stats);
  join.Run(emit, /*stop_after_first=*/false);
}

void ApplyRuleOldState(const Program& program, const OldStateView& old_state,
                       const Rule& rule, const DeltaRestriction& restriction,
                       EvalStats& stats,
                       const std::function<void(const Tuple&)>& emit) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  RuleJoin<OldStateView> join(program, old_state, rule, restriction, stats);
  join.Run(emit, /*stop_after_first=*/false);
}

std::vector<Tuple> EvaluateAggregateRule(const Program& program,
                                         const RelationStore& store,
                                         const Rule& rule, EvalStats& stats) {
  DSCHED_CHECK_MSG(rule.IsAggregate(), "not an aggregation rule");
  const Aggregate& aggregate = *rule.aggregate;

  // Synthetic projection: group-by terms, then (for value aggregates) the
  // aggregated variable, then every rule variable — so emitted tuples are
  // distinct exactly when the complete body binding is distinct.
  Rule probe = rule;
  probe.aggregate.reset();
  probe.head.args = rule.head.args;
  const std::size_t groups = rule.head.args.size();
  const bool has_value = aggregate.op != AggOp::kCount;
  if (has_value) {
    probe.head.args.push_back(Term::Var(aggregate.var));
  }
  for (std::uint32_t v = 0; v < rule.variable_names.size(); ++v) {
    probe.head.args.push_back(Term::Var(v));
  }

  std::unordered_set<Tuple, TupleHash> bindings;
  {
    RuleJoin<RelationStore> join(program, store, probe, DeltaRestriction{},
                                 stats);
    const std::function<void(const Tuple&)> collect =
        [&bindings](const Tuple& t) { bindings.insert(t); };
    join.Run(collect, /*stop_after_first=*/false);
  }

  // Fold per group.
  struct Accumulator {
    std::int64_t value = 0;
    std::uint64_t count = 0;
  };
  std::unordered_map<Tuple, Accumulator, TupleHash> folds;
  for (const Tuple& binding : bindings) {
    Tuple key(binding.begin(),
              binding.begin() + static_cast<std::ptrdiff_t>(groups));
    Accumulator& acc = folds[std::move(key)];
    ++acc.count;
    if (has_value) {
      const Value v = binding[groups];
      if (!v.IsInt()) {
        throw util::InvalidArgument(
            std::string(AggOpName(aggregate.op)) +
            " aggregates integer values only");
      }
      const std::int64_t x = v.AsInt();
      switch (aggregate.op) {
        case AggOp::kSum:
          acc.value += x;
          break;
        case AggOp::kMin:
          acc.value = acc.count == 1 ? x : std::min(acc.value, x);
          break;
        case AggOp::kMax:
          acc.value = acc.count == 1 ? x : std::max(acc.value, x);
          break;
        case AggOp::kCount:
          break;
      }
    }
  }
  std::vector<Tuple> out;
  out.reserve(folds.size());
  for (const auto& [key, acc] : folds) {
    Tuple head = key;
    head.push_back(Value::Int(aggregate.op == AggOp::kCount
                                  ? static_cast<std::int64_t>(acc.count)
                                  : acc.value));
    out.push_back(std::move(head));
  }
  ++stats.rule_applications;
  stats.tuples_derived += out.size();
  return out;
}

bool IsDerivable(const Program& program, const RelationStore& store,
                 const Rule& rule, const Tuple& head_tuple, EvalStats& stats) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  DeltaRestriction none;
  RuleJoin<RelationStore> join(program, store, rule, none, stats);
  if (!join.BindHead(head_tuple)) {
    return false;
  }
  bool found = false;
  const std::function<void(const Tuple&)> noop = [&found](const Tuple&) {
    found = true;
  };
  join.Run(noop, /*stop_after_first=*/true);
  return found;
}

std::uint64_t CountDerivations(const Program& program,
                               const RelationStore& store, const Rule& rule,
                               const Tuple& head_tuple, EvalStats& stats) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  const DeltaRestriction none;
  RuleJoin<RelationStore> join(program, store, rule, none, stats);
  if (!join.BindHead(head_tuple)) {
    return 0;
  }
  std::uint64_t derivations = 0;
  const std::function<void(const Tuple&)> count =
      [&derivations](const Tuple&) { ++derivations; };
  join.Run(count, /*stop_after_first=*/false);
  return derivations;
}

bool ForEachDerivation(
    const Program& program, const RelationStore& store, const Rule& rule,
    const Tuple& head_tuple, EvalStats& stats,
    const std::function<bool(
        const std::vector<std::pair<std::uint32_t, Tuple>>&)>& on_derivation) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  const DeltaRestriction none;
  RuleJoin<RelationStore> join(program, store, rule, none, stats);
  if (!join.BindHead(head_tuple)) {
    return false;
  }
  bool stopped = false;
  std::vector<std::pair<std::uint32_t, Tuple>> body;
  const std::function<void(const Tuple&)> emit = [&](const Tuple&) {
    if (stopped) {
      return;
    }
    join.GroundPositiveBody(body);
    stopped = on_derivation(body);
  };
  join.RunUntil(emit, &stopped);
  return stopped;
}

EvalStats EvaluateComponent(const Program& program, const Stratification& strat,
                            std::uint32_t component, RelationStore& store,
                            const DeltaMap* seed_deltas, DeltaMap* out_deltas) {
  EvalStats stats;
  const auto& rule_ids = strat.component_rules[component];
  std::vector<bool> is_member(program.NumPredicates(), false);
  for (const std::uint32_t p : strat.component_members[component]) {
    is_member[p] = true;
  }

  DeltaMap internal;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  const auto flush_into = [&](std::uint32_t head_pred, DeltaMap& sink) {
    Relation& relation = store.Of(head_pred);
    relation.Reserve(relation.Size() + buffer.size());
    for (Tuple& t : buffer) {
      if (relation.Insert(t)) {
        ++stats.tuples_inserted;
        sink[head_pred].push_back(t);
        if (out_deltas != nullptr) {
          (*out_deltas)[head_pred].push_back(std::move(t));
        }
      }
    }
    buffer.clear();
  };

  // --- Seed phase.
  if (seed_deltas == nullptr) {
    // From scratch: every rule fires once, unrestricted.
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      if (rule.IsAggregate()) {
        // Aggregates see only lower (already final) components, so a single
        // evaluation is exact.
        for (Tuple& t : EvaluateAggregateRule(program, store, rule, stats)) {
          buffer.push_back(std::move(t));
        }
        flush_into(rule.head.predicate, internal);
        continue;
      }
      ApplyRule(program, store, rule, DeltaRestriction{}, stats, collect);
      flush_into(rule.head.predicate, internal);
    }
  } else {
    // Incremental continuation: fire each rule once per positive body
    // literal whose predicate carries a seed delta.  (Insertions into
    // negated predicates never create derivations; the DRed engine handles
    // their destructive effect separately.)
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      DSCHED_CHECK_MSG(!rule.IsAggregate(),
                       "aggregate components are maintained by recompute-diff "
                       "(RunComponentPhase), not semi-naive continuation");
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        if (literal == nullptr || literal->negated) {
          continue;
        }
        const auto it = seed_deltas->find(literal->atom.predicate);
        if (it == seed_deltas->end() || it->second.empty()) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = it->second;
        ApplyRule(program, store, rule, restriction, stats, collect);
        flush_into(rule.head.predicate, internal);
      }
    }
    // Seed deltas landing directly on member predicates (base-fact inserts
    // into this component) must drive the recursion too.  They are already
    // in the store and already known to the caller, so they feed `internal`
    // only.
    for (const std::uint32_t p : strat.component_members[component]) {
      const auto it = seed_deltas->find(p);
      if (it != seed_deltas->end()) {
        auto& dst = internal[p];
        dst.insert(dst.end(), it->second.begin(), it->second.end());
      }
    }
  }

  // --- Recursive rounds on member-predicate deltas.
  while (true) {
    bool any = false;
    for (const auto& [pred, rows] : internal) {
      if (!rows.empty()) {
        any = true;
        break;
      }
    }
    if (!any) {
      break;
    }
    ++stats.rounds;
    DeltaMap next;
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        if (literal == nullptr || literal->negated ||
            !is_member[literal->atom.predicate]) {
          continue;
        }
        const auto it = internal.find(literal->atom.predicate);
        if (it == internal.end() || it->second.empty()) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = it->second;
        ApplyRule(program, store, rule, restriction, stats, collect);
        flush_into(rule.head.predicate, next);
      }
    }
    internal = std::move(next);
  }
  return stats;
}

EvalStats EvaluateProgram(const Program& program, const Stratification& strat,
                          RelationStore& store) {
  EvalStats stats;
  for (const std::uint32_t component : strat.component_order) {
    stats.Merge(EvaluateComponent(program, strat, component, store,
                                  /*seed_deltas=*/nullptr,
                                  /*out_deltas=*/nullptr));
  }
  return stats;
}

EvalStats EvaluateProgramNaive(const Program& program,
                               const Stratification& strat,
                               RelationStore& store) {
  EvalStats stats;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (const std::uint32_t component : strat.component_order) {
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats.rounds;
      for (const std::size_t r : strat.component_rules[component]) {
        const Rule& rule = program.rules[r];
        if (rule.IsAggregate()) {
          for (Tuple& t : EvaluateAggregateRule(program, store, rule, stats)) {
            buffer.push_back(std::move(t));
          }
        } else {
          ApplyRule(program, store, rule, DeltaRestriction{}, stats, collect);
        }
        Relation& relation = store.Of(rule.head.predicate);
        for (const Tuple& t : buffer) {
          if (relation.Insert(t)) {
            ++stats.tuples_inserted;
            changed = true;
          }
        }
        buffer.clear();
      }
    }
  }
  return stats;
}

}  // namespace dsched::datalog
