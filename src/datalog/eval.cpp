#include "datalog/eval.hpp"

#include "datalog/incremental.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace dsched::datalog {

void EvalStats::Merge(const EvalStats& other) {
  rule_applications += other.rule_applications;
  bindings_explored += other.bindings_explored;
  tuples_derived += other.tuples_derived;
  tuples_inserted += other.tuples_inserted;
  rounds += other.rounds;
}

std::string EvalStats::ToString() const {
  std::ostringstream oss;
  oss << "applications=" << rule_applications
      << " bindings=" << bindings_explored << " derived=" << tuples_derived
      << " inserted=" << tuples_inserted << " rounds=" << rounds;
  return oss.str();
}

namespace {

/// One rule application: nested-loop join with index lookups, run over an
/// explicit binding environment.  TStore is any type with the read
/// interface ContainsTuple / RowAt / Lookup — the live RelationStore or the
/// incremental engine's OldStateView.
template <typename TStore>
class RuleJoin {
 public:
  RuleJoin(const Program& program, const TStore& store,
           const Rule& rule, const DeltaRestriction& restriction,
           EvalStats& stats)
      : program_(program),
        store_(store),
        rule_(rule),
        restriction_(restriction),
        stats_(stats),
        bindings_(rule.variable_names.size()),
        bound_(rule.variable_names.size(), false) {
    // Split the body: the restricted element (if any) joins first; then the
    // remaining positive literals in body order; negations and comparisons
    // become post-join filters.
    for (std::size_t i = 0; i < rule_.body.size(); ++i) {
      const bool restricted = (i == restriction_.body_index);
      if (const auto* literal = std::get_if<Literal>(&rule_.body[i])) {
        if (restricted) {
          // Positive or negated: matched against the delta rows, first.
          has_restricted_ = true;
        } else if (!literal->negated) {
          join_order_.push_back(i);
        } else {
          filters_.push_back(i);
        }
      } else {
        DSCHED_CHECK_MSG(!restricted,
                         "a comparison cannot carry a delta restriction");
        filters_.push_back(i);
      }
    }
    if (has_restricted_) {
      join_order_.insert(join_order_.begin(), restriction_.body_index);
    }
  }

  /// Runs the join; emit is called per derived head tuple.  If
  /// `stop_after_first`, returns true as soon as one derivation succeeds.
  bool Run(const std::function<void(const Tuple&)>& emit,
           bool stop_after_first) {
    ++stats_.rule_applications;
    emit_ = &emit;
    stop_after_first_ = stop_after_first;
    return JoinFrom(0);
  }

  /// Pre-binds head variables against a ground head tuple (rederivation
  /// queries).  Returns false if constants clash.
  bool BindHead(const Tuple& head_tuple) {
    DSCHED_CHECK_MSG(head_tuple.size() == rule_.head.args.size(),
                     "head tuple arity mismatch");
    for (std::size_t i = 0; i < head_tuple.size(); ++i) {
      const Term& term = rule_.head.args[i];
      if (term.IsVar()) {
        if (bound_[term.var]) {
          if (!(bindings_[term.var] == head_tuple[i])) {
            return false;
          }
        } else {
          bound_[term.var] = true;
          bindings_[term.var] = head_tuple[i];
        }
      } else if (!(term.constant == head_tuple[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  const Atom& AtomAt(std::size_t body_index) const {
    return std::get<Literal>(rule_.body[body_index]).atom;
  }

  /// Attempts to match `row` against `atom` under the current bindings.
  /// On success pushes newly bound vars onto `undo` and returns true.
  bool Match(const Atom& atom, const Tuple& row,
             std::vector<std::uint32_t>& undo) {
    const std::size_t undo_mark = undo.size();
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.IsVar()) {
        if (!(term.constant == row[i])) {
          Unwind(undo, undo_mark);
          return false;
        }
        continue;
      }
      if (bound_[term.var]) {
        if (!(bindings_[term.var] == row[i])) {
          Unwind(undo, undo_mark);
          return false;
        }
        continue;
      }
      bound_[term.var] = true;
      bindings_[term.var] = row[i];
      undo.push_back(term.var);
    }
    return true;
  }

  void Unwind(std::vector<std::uint32_t>& undo, std::size_t mark) {
    while (undo.size() > mark) {
      bound_[undo.back()] = false;
      undo.pop_back();
    }
  }

  /// Ground-evaluates one filter element.
  bool Filter(std::size_t body_index) const {
    if (const auto* literal = std::get_if<Literal>(&rule_.body[body_index])) {
      Tuple probe(literal->atom.args.size());
      for (std::size_t i = 0; i < probe.size(); ++i) {
        const Term& term = literal->atom.args[i];
        probe[i] = term.IsVar() ? bindings_[term.var] : term.constant;
      }
      const bool present =
          store_.ContainsTuple(literal->atom.predicate, probe);
      return literal->negated ? !present : present;
    }
    const auto& cmp = std::get<Comparison>(rule_.body[body_index]);
    const Value lhs = cmp.lhs.IsVar() ? bindings_[cmp.lhs.var] : cmp.lhs.constant;
    const Value rhs = cmp.rhs.IsVar() ? bindings_[cmp.rhs.var] : cmp.rhs.constant;
    return EvalCmp(cmp.op, lhs, rhs);
  }

  bool EmitHead() {
    for (const std::size_t f : filters_) {
      if (!Filter(f)) {
        return false;
      }
    }
    Tuple head(rule_.head.args.size());
    for (std::size_t i = 0; i < head.size(); ++i) {
      const Term& term = rule_.head.args[i];
      head[i] = term.IsVar() ? bindings_[term.var] : term.constant;
    }
    ++stats_.tuples_derived;
    (*emit_)(head);
    return stop_after_first_;
  }

  /// Returns true when stop_after_first_ and a derivation was found.
  bool JoinFrom(std::size_t k) {
    if (k == join_order_.size()) {
      return EmitHead();
    }
    const std::size_t body_index = join_order_[k];
    const Atom& atom = AtomAt(body_index);
    std::vector<std::uint32_t> undo;

    const bool from_delta = has_restricted_ && k == 0;
    if (from_delta) {
      for (const Tuple& row : restriction_.rows) {
        ++stats_.bindings_explored;
        if (Match(atom, row, undo)) {
          if (JoinFrom(k + 1)) {
            Unwind(undo, 0);
            return true;
          }
          Unwind(undo, 0);
        }
      }
      return false;
    }

    // Bound columns under current bindings form the index key.  A variable
    // repeated within the literal contributes only its first occurrence.
    std::vector<std::size_t> columns;
    Tuple key;
    std::vector<bool> seen_var(bound_.size(), false);
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.IsVar()) {
        columns.push_back(i);
        key.push_back(term.constant);
      } else if (bound_[term.var] && !seen_var[term.var]) {
        columns.push_back(i);
        key.push_back(bindings_[term.var]);
        seen_var[term.var] = true;
      }
    }
    for (const std::uint32_t row_id :
         store_.Lookup(atom.predicate, columns, key)) {
      ++stats_.bindings_explored;
      if (Match(atom, store_.RowAt(atom.predicate, row_id), undo)) {
        if (JoinFrom(k + 1)) {
          Unwind(undo, 0);
          return true;
        }
        Unwind(undo, 0);
      }
    }
    return false;
  }

  const Program& program_;
  const TStore& store_;
  const Rule& rule_;
  const DeltaRestriction& restriction_;
  EvalStats& stats_;

  std::vector<Value> bindings_;
  std::vector<bool> bound_;
  std::vector<std::size_t> join_order_;
  std::vector<std::size_t> filters_;
  bool has_restricted_ = false;
  const std::function<void(const Tuple&)>* emit_ = nullptr;
  bool stop_after_first_ = false;
};

}  // namespace

void ApplyRule(const Program& program, const RelationStore& store,
               const Rule& rule, const DeltaRestriction& restriction,
               EvalStats& stats,
               const std::function<void(const Tuple&)>& emit) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  RuleJoin<RelationStore> join(program, store, rule, restriction, stats);
  join.Run(emit, /*stop_after_first=*/false);
}

void ApplyRuleOldState(const Program& program, const OldStateView& old_state,
                       const Rule& rule, const DeltaRestriction& restriction,
                       EvalStats& stats,
                       const std::function<void(const Tuple&)>& emit) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  RuleJoin<OldStateView> join(program, old_state, rule, restriction, stats);
  join.Run(emit, /*stop_after_first=*/false);
}

std::vector<Tuple> EvaluateAggregateRule(const Program& program,
                                         const RelationStore& store,
                                         const Rule& rule, EvalStats& stats) {
  DSCHED_CHECK_MSG(rule.IsAggregate(), "not an aggregation rule");
  const Aggregate& aggregate = *rule.aggregate;

  // Synthetic projection: group-by terms, then (for value aggregates) the
  // aggregated variable, then every rule variable — so emitted tuples are
  // distinct exactly when the complete body binding is distinct.
  Rule probe = rule;
  probe.aggregate.reset();
  probe.head.args = rule.head.args;
  const std::size_t groups = rule.head.args.size();
  const bool has_value = aggregate.op != AggOp::kCount;
  if (has_value) {
    probe.head.args.push_back(Term::Var(aggregate.var));
  }
  for (std::uint32_t v = 0; v < rule.variable_names.size(); ++v) {
    probe.head.args.push_back(Term::Var(v));
  }

  std::unordered_set<Tuple, TupleHash> bindings;
  {
    RuleJoin<RelationStore> join(program, store, probe, DeltaRestriction{},
                                 stats);
    const std::function<void(const Tuple&)> collect =
        [&bindings](const Tuple& t) { bindings.insert(t); };
    join.Run(collect, /*stop_after_first=*/false);
  }

  // Fold per group.
  struct Accumulator {
    std::int64_t value = 0;
    std::uint64_t count = 0;
  };
  std::unordered_map<Tuple, Accumulator, TupleHash> folds;
  for (const Tuple& binding : bindings) {
    Tuple key(binding.begin(),
              binding.begin() + static_cast<std::ptrdiff_t>(groups));
    Accumulator& acc = folds[std::move(key)];
    ++acc.count;
    if (has_value) {
      const Value v = binding[groups];
      if (!v.IsInt()) {
        throw util::InvalidArgument(
            std::string(AggOpName(aggregate.op)) +
            " aggregates integer values only");
      }
      const std::int64_t x = v.AsInt();
      switch (aggregate.op) {
        case AggOp::kSum:
          acc.value += x;
          break;
        case AggOp::kMin:
          acc.value = acc.count == 1 ? x : std::min(acc.value, x);
          break;
        case AggOp::kMax:
          acc.value = acc.count == 1 ? x : std::max(acc.value, x);
          break;
        case AggOp::kCount:
          break;
      }
    }
  }
  std::vector<Tuple> out;
  out.reserve(folds.size());
  for (const auto& [key, acc] : folds) {
    Tuple head = key;
    head.push_back(Value::Int(aggregate.op == AggOp::kCount
                                  ? static_cast<std::int64_t>(acc.count)
                                  : acc.value));
    out.push_back(std::move(head));
  }
  ++stats.rule_applications;
  stats.tuples_derived += out.size();
  return out;
}

bool IsDerivable(const Program& program, const RelationStore& store,
                 const Rule& rule, const Tuple& head_tuple, EvalStats& stats) {
  DSCHED_CHECK_MSG(!rule.IsAggregate(),
                   "aggregation rules go through EvaluateAggregateRule");
  DeltaRestriction none;
  RuleJoin<RelationStore> join(program, store, rule, none, stats);
  if (!join.BindHead(head_tuple)) {
    return false;
  }
  bool found = false;
  const std::function<void(const Tuple&)> noop = [&found](const Tuple&) {
    found = true;
  };
  join.Run(noop, /*stop_after_first=*/true);
  return found;
}

EvalStats EvaluateComponent(const Program& program, const Stratification& strat,
                            std::uint32_t component, RelationStore& store,
                            const DeltaMap* seed_deltas, DeltaMap* out_deltas) {
  EvalStats stats;
  const auto& rule_ids = strat.component_rules[component];
  std::vector<bool> is_member(program.NumPredicates(), false);
  for (const std::uint32_t p : strat.component_members[component]) {
    is_member[p] = true;
  }

  DeltaMap internal;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  const auto flush_into = [&](std::uint32_t head_pred, DeltaMap& sink) {
    Relation& relation = store.Of(head_pred);
    for (Tuple& t : buffer) {
      if (relation.Insert(t)) {
        ++stats.tuples_inserted;
        sink[head_pred].push_back(t);
        if (out_deltas != nullptr) {
          (*out_deltas)[head_pred].push_back(std::move(t));
        }
      }
    }
    buffer.clear();
  };

  // --- Seed phase.
  if (seed_deltas == nullptr) {
    // From scratch: every rule fires once, unrestricted.
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      if (rule.IsAggregate()) {
        // Aggregates see only lower (already final) components, so a single
        // evaluation is exact.
        for (Tuple& t : EvaluateAggregateRule(program, store, rule, stats)) {
          buffer.push_back(std::move(t));
        }
        flush_into(rule.head.predicate, internal);
        continue;
      }
      ApplyRule(program, store, rule, DeltaRestriction{}, stats, collect);
      flush_into(rule.head.predicate, internal);
    }
  } else {
    // Incremental continuation: fire each rule once per positive body
    // literal whose predicate carries a seed delta.  (Insertions into
    // negated predicates never create derivations; the DRed engine handles
    // their destructive effect separately.)
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      DSCHED_CHECK_MSG(!rule.IsAggregate(),
                       "aggregate components are maintained by recompute-diff "
                       "(RunComponentPhase), not semi-naive continuation");
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        if (literal == nullptr || literal->negated) {
          continue;
        }
        const auto it = seed_deltas->find(literal->atom.predicate);
        if (it == seed_deltas->end() || it->second.empty()) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = it->second;
        ApplyRule(program, store, rule, restriction, stats, collect);
        flush_into(rule.head.predicate, internal);
      }
    }
    // Seed deltas landing directly on member predicates (base-fact inserts
    // into this component) must drive the recursion too.  They are already
    // in the store and already known to the caller, so they feed `internal`
    // only.
    for (const std::uint32_t p : strat.component_members[component]) {
      const auto it = seed_deltas->find(p);
      if (it != seed_deltas->end()) {
        auto& dst = internal[p];
        dst.insert(dst.end(), it->second.begin(), it->second.end());
      }
    }
  }

  // --- Recursive rounds on member-predicate deltas.
  while (true) {
    bool any = false;
    for (const auto& [pred, rows] : internal) {
      if (!rows.empty()) {
        any = true;
        break;
      }
    }
    if (!any) {
      break;
    }
    ++stats.rounds;
    DeltaMap next;
    for (const std::size_t r : rule_ids) {
      const Rule& rule = program.rules[r];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        const auto* literal = std::get_if<Literal>(&rule.body[i]);
        if (literal == nullptr || literal->negated ||
            !is_member[literal->atom.predicate]) {
          continue;
        }
        const auto it = internal.find(literal->atom.predicate);
        if (it == internal.end() || it->second.empty()) {
          continue;
        }
        DeltaRestriction restriction;
        restriction.body_index = i;
        restriction.rows = it->second;
        ApplyRule(program, store, rule, restriction, stats, collect);
        flush_into(rule.head.predicate, next);
      }
    }
    internal = std::move(next);
  }
  return stats;
}

EvalStats EvaluateProgram(const Program& program, const Stratification& strat,
                          RelationStore& store) {
  EvalStats stats;
  for (const std::uint32_t component : strat.component_order) {
    stats.Merge(EvaluateComponent(program, strat, component, store,
                                  /*seed_deltas=*/nullptr,
                                  /*out_deltas=*/nullptr));
  }
  return stats;
}

EvalStats EvaluateProgramNaive(const Program& program,
                               const Stratification& strat,
                               RelationStore& store) {
  EvalStats stats;
  std::vector<Tuple> buffer;
  const std::function<void(const Tuple&)> collect =
      [&buffer](const Tuple& t) { buffer.push_back(t); };
  for (const std::uint32_t component : strat.component_order) {
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats.rounds;
      for (const std::size_t r : strat.component_rules[component]) {
        const Rule& rule = program.rules[r];
        if (rule.IsAggregate()) {
          for (Tuple& t : EvaluateAggregateRule(program, store, rule, stats)) {
            buffer.push_back(std::move(t));
          }
        } else {
          ApplyRule(program, store, rule, DeltaRestriction{}, stats, collect);
        }
        Relation& relation = store.Of(rule.head.predicate);
        for (const Tuple& t : buffer) {
          if (relation.Insert(t)) {
            ++stats.tuples_inserted;
            changed = true;
          }
        }
        buffer.clear();
      }
    }
  }
  return stats;
}

}  // namespace dsched::datalog
