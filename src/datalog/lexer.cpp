#include "datalog/lexer.hpp"

#include <cctype>

#include "util/error.hpp"

namespace dsched::datalog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPeriod:
      return "'.'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kImplies:
      return "':-'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  std::size_t line = 1;
  const auto fail = [&line](const std::string& what) -> util::ParseError {
    return util::ParseError("line " + std::to_string(line) + ": " + what);
  };
  const auto peek = [&](std::size_t ahead = 0) -> char {
    return (i + ahead < source.size()) ? source[i + ahead] : '\0';
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
              source[i] == '_')) {
        ++i;
      }
      const std::string text(source.substr(start, i - start));
      const bool is_var =
          (std::isupper(static_cast<unsigned char>(c)) != 0) || c == '_';
      tokens.push_back(
          {is_var ? TokenKind::kVariable : TokenKind::kIdentifier, text, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      const std::size_t start = i;
      ++i;  // first char (digit or '-')
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i])) != 0) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kNumber, std::string(source.substr(start, i - start)),
           line});
      continue;
    }
    if (c == '"') {
      ++i;
      const std::size_t start = i;
      while (i < source.size() && source[i] != '"' && source[i] != '\n') {
        ++i;
      }
      if (peek() != '"') {
        throw fail("unterminated string literal");
      }
      tokens.push_back(
          {TokenKind::kString, std::string(source.substr(start, i - start)),
           line});
      ++i;  // closing quote
      continue;
    }
    switch (c) {
      case '(':
        tokens.push_back({TokenKind::kLParen, "(", line});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenKind::kRParen, ")", line});
        ++i;
        continue;
      case ',':
        tokens.push_back({TokenKind::kComma, ",", line});
        ++i;
        continue;
      case '.':
        tokens.push_back({TokenKind::kPeriod, ".", line});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenKind::kSemicolon, ";", line});
        ++i;
        continue;
      case ':':
        if (peek(1) == '-') {
          tokens.push_back({TokenKind::kImplies, ":-", line});
          i += 2;
          continue;
        }
        throw fail("stray ':' (expected ':-')");
      case '!':
        if (peek(1) == '=') {
          tokens.push_back({TokenKind::kNe, "!=", line});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kBang, "!", line});
          ++i;
        }
        continue;
      case '=':
        tokens.push_back({TokenKind::kEq, "=", line});
        ++i;
        continue;
      case '<':
        if (peek(1) == '=') {
          tokens.push_back({TokenKind::kLe, "<=", line});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kLt, "<", line});
          ++i;
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          tokens.push_back({TokenKind::kGe, ">=", line});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kGt, ">", line});
          ++i;
        }
        continue;
      default:
        throw fail(std::string("illegal character '") + c + "'");
    }
  }
  tokens.push_back({TokenKind::kEnd, "", line});
  return tokens;
}

}  // namespace dsched::datalog
