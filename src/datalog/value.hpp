// Ground values and tuples of the Datalog engine.
//
// A Value is either a 63-bit signed integer or an interned symbol.  Both
// fit one machine word, so relations are flat and joins stay cache-friendly
// — the retail workloads the paper's traces come from are exactly
// large-join Datalog programs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace dsched::datalog {

/// Interns symbol strings; symbol ids are dense and stable.
class SymbolTable {
 public:
  /// Returns the id of `name`, interning it on first sight.
  std::uint32_t Intern(std::string_view name);

  /// The text of a previously interned symbol.
  [[nodiscard]] const std::string& NameOf(std::uint32_t id) const;

  [[nodiscard]] std::size_t Size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

/// One ground value: tagged 64-bit word.
class Value {
 public:
  Value() : bits_(0) {}

  /// Integer value; must fit 63 bits.
  static Value Int(std::int64_t v) {
    DSCHED_CHECK_MSG(v >= kMinInt && v <= kMaxInt,
                     "integer value out of 63-bit range");
    return Value((static_cast<std::uint64_t>(v) << 1) | 0U);
  }

  /// Symbol value by interned id.
  static Value Symbol(std::uint32_t id) {
    return Value((static_cast<std::uint64_t>(id) << 1) | 1U);
  }

  [[nodiscard]] bool IsInt() const { return (bits_ & 1U) == 0; }
  [[nodiscard]] bool IsSymbol() const { return (bits_ & 1U) == 1; }

  [[nodiscard]] std::int64_t AsInt() const {
    DSCHED_CHECK_MSG(IsInt(), "value is not an integer");
    return static_cast<std::int64_t>(bits_) >> 1;
  }
  [[nodiscard]] std::uint32_t AsSymbol() const {
    DSCHED_CHECK_MSG(IsSymbol(), "value is not a symbol");
    return static_cast<std::uint32_t>(bits_ >> 1);
  }

  /// Raw tagged bits (used by hashing).
  [[nodiscard]] std::uint64_t Bits() const { return bits_; }

  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend auto operator<=>(Value a, Value b) { return a.bits_ <=> b.bits_; }

  /// Rendering; symbols need the table.
  [[nodiscard]] std::string ToString(const SymbolTable& symbols) const;

  static constexpr std::int64_t kMaxInt = (std::int64_t{1} << 62) - 1;
  static constexpr std::int64_t kMinInt = -(std::int64_t{1} << 62);

 private:
  explicit Value(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_;
};

/// A ground tuple (one relation row), owning storage.
using Tuple = std::vector<Value>;

/// Non-owning view of one row: `arity` tagged words, usually pointing
/// straight into a Relation's arena.  A Tuple converts implicitly.
using RowView = std::span<const Value>;

/// Folds a 128-bit product into 64 bits — the wyhash/umash device.  Unlike
/// shift-xor mixers, every input bit diffuses through the multiply into
/// every output bit, so low-entropy tagged values (small ints shifted left
/// by the tag bit, dense symbol ids) do not cluster.
inline std::uint64_t MixHash(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 m =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
}

/// Hash of a row of tagged words (wyhash-style word mixer).  The length is
/// folded into the seed so prefixes do not collide.
inline std::uint64_t HashValues(RowView row) {
  std::uint64_t h =
      0x9e3779b97f4a7c15ULL ^ (row.size() * 0x2d358dccaa6c78a5ULL);
  for (const Value v : row) {
    h = MixHash(h ^ v.Bits(), 0x8bb84b93962eacc9ULL);
  }
  return h;
}

/// Tuple/row hash.  Transparent: hashes owning Tuples and arena RowViews
/// identically, so sets keyed by Tuple can be probed with a RowView without
/// materializing.
struct TupleHash {
  using is_transparent = void;
  std::size_t operator()(RowView row) const {
    return static_cast<std::size_t>(HashValues(row));
  }
  std::size_t operator()(const Tuple& t) const {
    return static_cast<std::size_t>(HashValues(RowView(t)));
  }
};

/// Transparent Tuple/RowView equality, companion to TupleHash.
struct TupleEq {
  using is_transparent = void;
  bool operator()(RowView a, RowView b) const {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
};

/// Renders "(a, 3, b)".
[[nodiscard]] std::string TupleToString(const Tuple& tuple,
                                        const SymbolTable& symbols);

}  // namespace dsched::datalog
