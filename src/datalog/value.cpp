#include "datalog/value.hpp"

#include <sstream>

namespace dsched::datalog {

std::uint32_t SymbolTable::Intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& SymbolTable::NameOf(std::uint32_t id) const {
  DSCHED_CHECK_MSG(id < names_.size(), "unknown symbol id");
  return names_[id];
}

std::string Value::ToString(const SymbolTable& symbols) const {
  if (IsInt()) {
    return std::to_string(AsInt());
  }
  return symbols.NameOf(AsSymbol());
}

std::string TupleToString(const Tuple& tuple, const SymbolTable& symbols) {
  std::ostringstream oss;
  oss << "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << tuple[i].ToString(symbols);
  }
  oss << ")";
  return oss.str();
}

}  // namespace dsched::datalog
