// Recursive-descent parser: token stream → Program.
#pragma once

#include <string_view>

#include "datalog/ast.hpp"

namespace dsched::datalog {

/// Parses a whole program.  Enforces consistent predicate arities; throws
/// util::ParseError with line context on any syntax problem.
[[nodiscard]] Program ParseProgram(std::string_view source);

/// Parses additional clauses into an existing program, reusing its
/// predicate and symbol interning (arities must stay consistent).  Appends
/// to program.rules; used for incremental rule changes.
void ExtendProgram(Program& program, std::string_view source);

/// Parses exactly one clause against `program`'s interning WITHOUT adding
/// it, returning the parsed rule — used to identify an existing rule for
/// removal.  Throws util::ParseError if the text is not a single clause.
[[nodiscard]] Rule ParseSingleClause(const Program& program,
                                     std::string_view source);

/// Structural equality of rules (same atoms, terms, variable numbering —
/// which the parser assigns by order of first appearance, so two
/// identically-written clauses compare equal).
[[nodiscard]] bool RulesEquivalent(const Rule& a, const Rule& b);

}  // namespace dsched::datalog
