#include "datalog/parser.hpp"

#include <unordered_map>

#include "datalog/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dsched::datalog {

namespace {

/// Parser state over one token stream.
class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(Tokenize(source)) {}

  /// Seeds the parser with an existing program's interning (rules included,
  /// so new clauses append after them).
  Parser(Program existing, std::string_view source)
      : tokens_(Tokenize(source)), program_(std::move(existing)) {
    for (std::uint32_t id = 0; id < program_.predicate_names.size(); ++id) {
      predicate_ids_.emplace(program_.predicate_names[id], id);
    }
  }

  Program Run() {
    while (Peek().kind != TokenKind::kEnd) {
      ParseClause();
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  [[noreturn]] void Fail(const std::string& what) const {
    throw util::ParseError("line " + std::to_string(Peek().line) + ": " +
                           what + " (got " + TokenKindName(Peek().kind) +
                           (Peek().text.empty() ? "" : " '" + Peek().text + "'") +
                           ")");
  }

  const Token& Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      Fail(std::string("expected ") + what);
    }
    return Advance();
  }

  std::uint32_t InternPredicate(const std::string& name, std::size_t arity,
                                std::size_t line) {
    const auto it = predicate_ids_.find(name);
    if (it != predicate_ids_.end()) {
      const std::uint32_t id = it->second;
      if (program_.predicate_arities[id] != arity) {
        throw util::ParseError(
            "line " + std::to_string(line) + ": predicate '" + name +
            "' used with arity " + std::to_string(arity) + " but declared " +
            std::to_string(program_.predicate_arities[id]));
      }
      return id;
    }
    const auto id = static_cast<std::uint32_t>(program_.predicate_names.size());
    program_.predicate_names.push_back(name);
    program_.predicate_arities.push_back(arity);
    predicate_ids_.emplace(name, id);
    return id;
  }

  std::uint32_t VariableId(Rule& rule, const std::string& name) {
    for (std::uint32_t id = 0; id < rule.variable_names.size(); ++id) {
      if (rule.variable_names[id] == name) {
        return id;
      }
    }
    rule.variable_names.push_back(name);
    return static_cast<std::uint32_t>(rule.variable_names.size() - 1);
  }

  Term ParseTerm(Rule& rule) {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable: {
        Advance();
        // A bare "_" is an anonymous variable: always fresh.
        if (tok.text == "_") {
          rule.variable_names.push_back("_" + std::to_string(
              rule.variable_names.size()));
          return Term::Var(
              static_cast<std::uint32_t>(rule.variable_names.size() - 1));
        }
        return Term::Var(VariableId(rule, tok.text));
      }
      case TokenKind::kIdentifier:
        Advance();
        return Term::Const(Value::Symbol(program_.symbols.Intern(tok.text)));
      case TokenKind::kString:
        Advance();
        return Term::Const(Value::Symbol(program_.symbols.Intern(tok.text)));
      case TokenKind::kNumber: {
        Advance();
        std::int64_t v = 0;
        try {
          v = std::stoll(tok.text);
        } catch (const std::exception&) {
          Fail("integer literal out of range");
        }
        return Term::Const(Value::Int(v));
      }
      default:
        Fail("expected a term");
    }
  }

  Atom ParseAtom(Rule& rule) {
    const Token name = Expect(TokenKind::kIdentifier, "predicate name");
    Atom atom;
    Expect(TokenKind::kLParen, "'('");
    if (Peek().kind != TokenKind::kRParen) {
      atom.args.push_back(ParseTerm(rule));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        atom.args.push_back(ParseTerm(rule));
      }
    }
    Expect(TokenKind::kRParen, "')'");
    atom.predicate = InternPredicate(name.text, atom.args.size(), name.line);
    return atom;
  }

  static bool IsCmpToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  static CmpOp ToCmpOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
        return CmpOp::kEq;
      case TokenKind::kNe:
        return CmpOp::kNe;
      case TokenKind::kLt:
        return CmpOp::kLt;
      case TokenKind::kLe:
        return CmpOp::kLe;
      case TokenKind::kGt:
        return CmpOp::kGt;
      default:
        return CmpOp::kGe;
    }
  }

  BodyElement ParseBodyElement(Rule& rule) {
    if (Peek().kind == TokenKind::kBang) {
      Advance();
      Literal literal;
      literal.negated = true;
      literal.atom = ParseAtom(rule);
      return literal;
    }
    // Comparison if the element starts with a term followed by an operator;
    // an identifier followed by '(' is an atom.
    const bool atom_like = Peek().kind == TokenKind::kIdentifier &&
                           Peek(1).kind == TokenKind::kLParen;
    if (!atom_like) {
      Comparison cmp;
      cmp.lhs = ParseTerm(rule);
      if (!IsCmpToken(Peek().kind)) {
        Fail("expected comparison operator");
      }
      cmp.op = ToCmpOp(Advance().kind);
      cmp.rhs = ParseTerm(rule);
      return cmp;
    }
    Literal literal;
    literal.atom = ParseAtom(rule);
    return literal;
  }

  /// Parses the head, which is either a plain atom or an aggregation head:
  /// `pred(G1, ..., Gk; sum(V))`.
  void ParseHead(Rule& rule) {
    const Token name = Expect(TokenKind::kIdentifier, "predicate name");
    Expect(TokenKind::kLParen, "'('");
    Atom head;
    if (Peek().kind != TokenKind::kRParen &&
        Peek().kind != TokenKind::kSemicolon) {
      head.args.push_back(ParseTerm(rule));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        head.args.push_back(ParseTerm(rule));
      }
    }
    if (Peek().kind == TokenKind::kSemicolon) {
      Advance();
      const Token agg_name =
          Expect(TokenKind::kIdentifier, "aggregate (count/sum/min/max)");
      Aggregate aggregate;
      if (agg_name.text == "count") {
        aggregate.op = AggOp::kCount;
      } else if (agg_name.text == "sum") {
        aggregate.op = AggOp::kSum;
      } else if (agg_name.text == "min") {
        aggregate.op = AggOp::kMin;
      } else if (agg_name.text == "max") {
        aggregate.op = AggOp::kMax;
      } else {
        Fail("unknown aggregate '" + agg_name.text + "'");
      }
      Expect(TokenKind::kLParen, "'('");
      if (aggregate.op != AggOp::kCount) {
        const Token var = Peek();
        if (var.kind != TokenKind::kVariable || var.text == "_") {
          Fail("aggregate expects a named variable");
        }
        Advance();
        aggregate.var = VariableId(rule, var.text);
      }
      Expect(TokenKind::kRParen, "')'");
      rule.aggregate = aggregate;
    }
    Expect(TokenKind::kRParen, "')'");
    // Aggregation heads carry an extra (result) column.
    const std::size_t arity =
        head.args.size() + (rule.aggregate.has_value() ? 1 : 0);
    head.predicate = InternPredicate(name.text, arity, name.line);
    rule.head = std::move(head);
  }

  void ParseClause() {
    Rule rule;
    rule.line = Peek().line;
    ParseHead(rule);
    if (rule.IsAggregate() && Peek().kind != TokenKind::kImplies) {
      Fail("an aggregation head requires a rule body");
    }
    if (Peek().kind == TokenKind::kImplies) {
      Advance();
      rule.body.push_back(ParseBodyElement(rule));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        rule.body.push_back(ParseBodyElement(rule));
      }
    }
    Expect(TokenKind::kPeriod, "'.'");
    program_.rules.push_back(std::move(rule));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program program_;
  std::unordered_map<std::string, std::uint32_t> predicate_ids_;
};

}  // namespace

Program ParseProgram(std::string_view source) {
  return Parser(source).Run();
}

void ExtendProgram(Program& program, std::string_view source) {
  Parser parser(std::move(program), source);
  program = parser.Run();
}

Rule ParseSingleClause(const Program& program, std::string_view source) {
  Program scratch;
  scratch.predicate_names = program.predicate_names;
  scratch.predicate_arities = program.predicate_arities;
  scratch.symbols = program.symbols;
  const std::size_t before = program.rules.size();
  (void)before;
  Parser parser(std::move(scratch), source);
  Program parsed = parser.Run();
  if (parsed.rules.size() != 1) {
    throw util::ParseError("expected exactly one clause, got " +
                           std::to_string(parsed.rules.size()));
  }
  if (parsed.predicate_names.size() != program.predicate_names.size()) {
    throw util::ParseError(
        "clause references a predicate unknown to the program");
  }
  return std::move(parsed.rules.front());
}

namespace {
bool TermsEqual(const Term& a, const Term& b) {
  if (a.kind != b.kind) {
    return false;
  }
  return a.IsVar() ? a.var == b.var : a.constant == b.constant;
}

bool AtomsEqual(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (!TermsEqual(a.args[i], b.args[i])) {
      return false;
    }
  }
  return true;
}
}  // namespace

bool RulesEquivalent(const Rule& a, const Rule& b) {
  if (!AtomsEqual(a.head, b.head) || a.body.size() != b.body.size()) {
    return false;
  }
  if (a.aggregate.has_value() != b.aggregate.has_value()) {
    return false;
  }
  if (a.aggregate.has_value() &&
      (a.aggregate->op != b.aggregate->op ||
       (a.aggregate->op != AggOp::kCount &&
        a.aggregate->var != b.aggregate->var))) {
    return false;
  }
  for (std::size_t i = 0; i < a.body.size(); ++i) {
    const auto* la = std::get_if<Literal>(&a.body[i]);
    const auto* lb = std::get_if<Literal>(&b.body[i]);
    if ((la == nullptr) != (lb == nullptr)) {
      return false;
    }
    if (la != nullptr) {
      if (la->negated != lb->negated || !AtomsEqual(la->atom, lb->atom)) {
        return false;
      }
    } else {
      const auto& ca = std::get<Comparison>(a.body[i]);
      const auto& cb = std::get<Comparison>(b.body[i]);
      if (ca.op != cb.op || !TermsEqual(ca.lhs, cb.lhs) ||
          !TermsEqual(ca.rhs, cb.rhs)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dsched::datalog
