// The versioned, immutable compile of one program: everything derived from
// the rule text alone — stratification, component condensation, and the
// pipeline plan's levels/fences — bundled into one snapshot that readers pin
// with a single shared_ptr acquire (DESIGN.md §15).
//
// Splitting these artifacts out of Database is what makes live rule-set
// evolution safe: an EvolveRules swap publishes a complete new version
// atomically, so a pipelined cascade, a query renderer, or the wire
// frontend's op translation always sees ONE consistent
// (program, strat, plan) triple — never a new stratification against an old
// rule list.  The store is deliberately NOT part of the snapshot: relations
// are shared across versions (rule edits only append predicates), and the
// maintenance cascade migrates their contents in place.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/pipeline_plan.hpp"
#include "datalog/stratify.hpp"

namespace dsched::datalog {

/// Work accounting for one rule-set evolution, surfaced through
/// Database::EvolveResult and the service layer's UpdateOutcome.
struct EvolveStats {
  /// Predicates whose derivations can change (the affected SCC cone).
  std::size_t cone_predicates = 0;
  /// Components re-stratified by the cone-restricted Tarjan run.
  std::size_t cone_components = 0;
  /// Old components reused verbatim (membership untouched by the edit).
  std::size_t reused_components = 0;
};

/// One compiled snapshot.  Immutable after publication with ONE exception:
/// `program.symbols` is append-only and grows under the owning Database's
/// symbol lock (symbol ids are global across versions — every recompile
/// copies its predecessor's table, so a table at least as new as the data
/// renders any id).
struct CompiledProgram {
  /// 1-based, incremented by every successful AddRules/RemoveRule.
  std::uint64_t version = 1;
  Program program;
  Stratification strat;
  PipelinePlan plan;
};

/// Full compile of a freshly parsed program (version 1).  Validates,
/// stratifies from scratch, and builds the pipeline plan.  Throws
/// util::InvalidArgument on unsafe or unstratifiable programs.
[[nodiscard]] std::shared_ptr<CompiledProgram> CompileProgram(Program program);

/// Incremental recompile after a rule edit.  `program` is the edited rule
/// set (predicates only ever appended relative to `old`), `changed_heads`
/// the head predicates of every added/removed rule.  Stratification runs
/// Tarjan only on the affected cone (stratify.hpp RestratifyAffected) and
/// reuses every untouched component of `old`; the pipeline plan is rebuilt
/// globally (linear).  Pure: throws (util::InvalidArgument) without
/// touching `old`, so a failed evolution leaves the database on its current
/// version.  On success `*affected_out` (when non-null) holds the cone
/// bitmap over the NEW predicate space.
[[nodiscard]] std::shared_ptr<CompiledProgram> RecompileProgram(
    const CompiledProgram& old, Program program,
    const std::vector<std::uint32_t>& changed_heads,
    std::vector<bool>* affected_out = nullptr, EvolveStats* stats = nullptr);

}  // namespace dsched::datalog
