// Static pipelining plan for a stratified program: dependency levels and
// per-component fences, computed once per (re)stratification and shared by
// every epoch of a session (DESIGN.md §12).
//
// Why not component_stratum?  Strata only grow across NEGATIVE edges, so
// two components on the same stratum may depend on each other — overlapping
// epochs by stratum would let epoch e+1 write a predicate epoch e is still
// deriving from.  The pipeline instead uses the longest-path depth of the
// component condensation ("level"): level(c) = 1 + max level over the
// components c's rule bodies read, 0 for components with no external
// inputs.  "Epoch e finalized all levels < L" then implies every transitive
// producer of a level-L component has finished AND flushed (the write
// buffers wait on the per-shard version counters before a task completes).
//
// The fence covers the other race direction too.  A component phase reads
// exactly its member predicates plus its rules' body predicates
// (OldStateView's `relevant` set), so epoch e+1 mutating component c's
// members races only with epoch-e readers of those members — components at
// levels up to last_reader_level.  Hence:
//
//   fence(c) = 1 + max(level(c), max over members m of last_reader(m))
//
// expressed as "levels epoch e must have finalized" — level(c) itself for
// the write/write exclusion against e's own instance of c, the reader term
// for write/read.  A component nobody reads still fences on its own level.
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/stratify.hpp"

namespace dsched::datalog {

/// Per-component levels and fences; indexes parallel Stratification's.
struct PipelinePlan {
  /// Longest-path depth in the component condensation (0-based).
  std::vector<std::uint32_t> component_level;
  /// Finalized-level count epoch e-1 must reach before epoch e may start
  /// this component's phase (see file comment).
  std::vector<std::uint32_t> component_fence;
  /// Deepest component level whose rules read each predicate (>= the
  /// owner's level; equal when nobody reads it).
  std::vector<std::uint32_t> predicate_last_reader;
  /// 1 + the deepest level — the frontier's "all levels" count.
  std::uint32_t num_levels = 0;
};

/// Builds the plan; `strat.component_order` must be topological (it is —
/// Kahn order over the condensation).
[[nodiscard]] PipelinePlan BuildPipelinePlan(const Program& program,
                                             const Stratification& strat);

}  // namespace dsched::datalog
