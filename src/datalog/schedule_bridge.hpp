// Bridge from a recorded incremental update to a scheduling JobTrace —
// the full pipeline the paper describes: Datalog program → computation DAG
// → activation cascade → scheduler input.
//
// DAG shape (mirroring Figure 1's anatomy):
//  * one zero-work *collector* node per predicate ("predicate nodes used to
//    collect inputs and outputs");
//  * one *task* node per rule component (the fixpoint evaluation granule);
//  * edges: predicate → every component reading it; component → every
//    member predicate it writes.
// Activation data comes from a real IncrementalEngine::Apply run: a task's
// work is the measured component evaluation time, its output-changes bit is
// whether the component's relations net-changed, and the initially dirty
// nodes are the base predicates the update touched.
#pragma once

#include <string>
#include <vector>

#include "datalog/incremental.hpp"
#include "datalog/stratify.hpp"
#include "trace/job_trace.hpp"

namespace dsched::datalog {

/// The constructed trace plus the node correspondence.
struct UpdateTrace {
  trace::JobTrace trace;
  /// Node labels parallel to trace node ids (for DOT export / debugging).
  std::vector<std::string> labels;
  /// predicate id → collector node id.
  std::vector<util::TaskId> predicate_node;
  /// component id → task node id (kInvalidTask for rule-less components,
  /// whose collector node doubles as the source).
  std::vector<util::TaskId> component_node;
};

/// Builds the trace for one applied update.  `result` must come from an
/// IncrementalEngine::Apply of `request` under the same program/strat.
[[nodiscard]] UpdateTrace BuildUpdateTrace(const Program& program,
                                           const Stratification& strat,
                                           const UpdateRequest& request,
                                           const UpdateResult& result,
                                           std::string trace_name = "datalog-update");

}  // namespace dsched::datalog
