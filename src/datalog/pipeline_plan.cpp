#include "datalog/pipeline_plan.hpp"

#include <algorithm>

namespace dsched::datalog {

PipelinePlan BuildPipelinePlan(const Program& program,
                               const Stratification& strat) {
  PipelinePlan plan;
  const std::size_t num_comps = strat.NumComponents();
  const std::size_t num_preds = program.NumPredicates();
  plan.component_level.assign(num_comps, 0);

  // Longest path over the condensation, in topological order.  Negated
  // literals are dependencies like any other — the fence must cover them.
  for (const std::uint32_t c : strat.component_order) {
    std::uint32_t level = 0;
    for (const std::size_t r : strat.component_rules[c]) {
      for (const BodyElement& element : program.rules[r].body) {
        const auto* literal = std::get_if<Literal>(&element);
        if (literal == nullptr) {
          continue;
        }
        const std::uint32_t dep = strat.component_of[literal->atom.predicate];
        if (dep != c) {
          level = std::max(level, plan.component_level[dep] + 1);
        }
      }
    }
    plan.component_level[c] = level;
    plan.num_levels = std::max(plan.num_levels, level + 1);
  }

  plan.predicate_last_reader.assign(num_preds, 0);
  for (std::size_t p = 0; p < num_preds; ++p) {
    plan.predicate_last_reader[p] = plan.component_level[strat.component_of[p]];
  }
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    for (const std::size_t r : strat.component_rules[c]) {
      for (const BodyElement& element : program.rules[r].body) {
        if (const auto* literal = std::get_if<Literal>(&element)) {
          std::uint32_t& reader =
              plan.predicate_last_reader[literal->atom.predicate];
          reader = std::max(reader, plan.component_level[c]);
        }
      }
    }
  }

  plan.component_fence.assign(num_comps, 0);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    std::uint32_t deepest = plan.component_level[c];
    for (const std::uint32_t m : strat.component_members[c]) {
      deepest = std::max(deepest, plan.predicate_last_reader[m]);
    }
    plan.component_fence[c] = deepest + 1;
  }
  return plan;
}

}  // namespace dsched::datalog
