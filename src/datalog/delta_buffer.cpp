#include "datalog/delta_buffer.hpp"

#include "util/error.hpp"

namespace dsched::datalog {

void ShardedWriteBuffer::Bind(Relation& relation) {
  if (relation_ == &relation) {
    return;
  }
  DSCHED_CHECK_MSG(in_flight_rows_ == 0 && published_.empty(),
                   "rebinding a write buffer with rows in flight");
  relation_ = &relation;
  staging_.clear();
  staging_.resize(relation.NumShards());
}

Relation::DeltaChunk* ShardedWriteBuffer::StagingFor(std::size_t shard) {
  std::unique_ptr<Relation::DeltaChunk>& slot = staging_[shard];
  if (slot == nullptr) {
    if (!free_.empty()) {
      slot = std::move(free_.back());
      free_.pop_back();
    } else {
      slot = std::make_unique<Relation::DeltaChunk>();
    }
  }
  return slot.get();
}

void ShardedWriteBuffer::StageInsert(RowView tuple) {
  DSCHED_CHECK_MSG(relation_ != nullptr, "write buffer is unbound");
  const std::uint64_t hash = HashValues(tuple);
  const std::size_t shard = relation_->ShardOfHash(hash);
  Relation::DeltaChunk* chunk = StagingFor(shard);
  chunk->values.insert(chunk->values.end(), tuple.begin(), tuple.end());
  chunk->hashes.push_back(hash);
  chunk->ops.push_back(Relation::kOpInsert);
  if (!chunk->deltas.empty()) {
    chunk->deltas.push_back(0);
  }
  ++in_flight_rows_;
  if (chunk->Count() >= kAutoPublishRows) {
    PublishShard(shard);
  }
}

void ShardedWriteBuffer::StageErase(RowView tuple) {
  DSCHED_CHECK_MSG(relation_ != nullptr, "write buffer is unbound");
  const std::uint64_t hash = HashValues(tuple);
  const std::size_t shard = relation_->ShardOfHash(hash);
  Relation::DeltaChunk* chunk = StagingFor(shard);
  chunk->values.insert(chunk->values.end(), tuple.begin(), tuple.end());
  chunk->hashes.push_back(hash);
  chunk->ops.push_back(Relation::kOpErase);
  if (!chunk->deltas.empty()) {
    chunk->deltas.push_back(0);
  }
  ++in_flight_rows_;
  if (chunk->Count() >= kAutoPublishRows) {
    PublishShard(shard);
  }
}

void ShardedWriteBuffer::StageAdjust(RowView tuple, std::int32_t delta) {
  DSCHED_CHECK_MSG(relation_ != nullptr, "write buffer is unbound");
  const std::uint64_t hash = HashValues(tuple);
  const std::size_t shard = relation_->ShardOfHash(hash);
  Relation::DeltaChunk* chunk = StagingFor(shard);
  chunk->values.insert(chunk->values.end(), tuple.begin(), tuple.end());
  chunk->hashes.push_back(hash);
  chunk->ops.push_back(Relation::kOpAdjust);
  // The deltas column is lazily materialized: backfill zeros for any
  // insert/erase rows staged before the chunk's first adjust.
  if (chunk->deltas.empty()) {
    chunk->deltas.resize(chunk->ops.size() - 1, 0);
  }
  chunk->deltas.push_back(delta);
  ++in_flight_rows_;
  if (chunk->Count() >= kAutoPublishRows) {
    PublishShard(shard);
  }
}

void ShardedWriteBuffer::PublishShard(std::size_t shard) {
  std::unique_ptr<Relation::DeltaChunk> chunk = std::move(staging_[shard]);
  if (chunk == nullptr || chunk->Count() == 0) {
    staging_[shard] = std::move(chunk);
    return;
  }
  chunk->epoch = epoch_;
  relation_->Publish(shard, chunk.get());
  published_.push_back({std::move(chunk), shard});
}

void ShardedWriteBuffer::Flush(const ResultFn& on_result) {
  if (!on_result) {
    FlushCodes({});
    return;
  }
  FlushCodes([&on_result](std::uint8_t op, RowView row, std::uint8_t code) {
    on_result(op, row, code != Relation::kNoChange);
  });
}

void ShardedWriteBuffer::FlushCodes(const ResultCodeFn& on_result) {
  if (relation_ == nullptr) {
    return;
  }
  for (std::size_t shard = 0; shard < staging_.size(); ++shard) {
    PublishShard(shard);
  }
  const std::size_t arity = relation_->Arity();
  for (Published& p : published_) {
    relation_->WaitApplied(p.shard, *p.chunk);
    if (on_result) {
      const Relation::DeltaChunk& chunk = *p.chunk;
      for (std::size_t i = 0; i < chunk.Count(); ++i) {
        on_result(chunk.ops[i],
                  RowView{chunk.values.data() + i * arity, arity},
                  chunk.results[i]);
      }
    }
    p.chunk->Reset();
    free_.push_back(std::move(p.chunk));
  }
  published_.clear();
  in_flight_rows_ = 0;
}

ShardedWriteBuffer& StoreWriteBuffer::For(RelationStore& store,
                                          std::uint32_t predicate) {
  if (buffers_.size() <= predicate) {
    buffers_.resize(predicate + 1);
  }
  std::unique_ptr<ShardedWriteBuffer>& slot = buffers_[predicate];
  if (slot == nullptr) {
    slot = std::make_unique<ShardedWriteBuffer>();
  }
  slot->Bind(store.Of(predicate));
  slot->SetEpoch(epoch_);
  return *slot;
}

void StoreWriteBuffer::SetEpoch(std::uint64_t epoch) {
  epoch_ = epoch;
  for (const std::unique_ptr<ShardedWriteBuffer>& buffer : buffers_) {
    if (buffer != nullptr) {
      buffer->SetEpoch(epoch);
    }
  }
}

}  // namespace dsched::datalog
