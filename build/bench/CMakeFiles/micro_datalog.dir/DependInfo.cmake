
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_datalog.cpp" "bench/CMakeFiles/micro_datalog.dir/micro_datalog.cpp.o" "gcc" "bench/CMakeFiles/micro_datalog.dir/micro_datalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/ds_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/ds_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ds_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
