file(REMOVE_RECURSE
  "CMakeFiles/micro_datalog.dir/micro_datalog.cpp.o"
  "CMakeFiles/micro_datalog.dir/micro_datalog.cpp.o.d"
  "micro_datalog"
  "micro_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
