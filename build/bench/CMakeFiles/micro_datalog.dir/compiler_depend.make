# Empty compiler generated dependencies file for micro_datalog.
# This may be replaced when dependencies are built.
