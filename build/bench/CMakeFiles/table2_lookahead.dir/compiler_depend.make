# Empty compiler generated dependencies file for table2_lookahead.
# This may be replaced when dependencies are built.
