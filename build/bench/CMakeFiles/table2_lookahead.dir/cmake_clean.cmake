file(REMOVE_RECURSE
  "CMakeFiles/table2_lookahead.dir/table2_lookahead.cpp.o"
  "CMakeFiles/table2_lookahead.dir/table2_lookahead.cpp.o.d"
  "table2_lookahead"
  "table2_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
