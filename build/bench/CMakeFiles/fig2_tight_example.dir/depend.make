# Empty dependencies file for fig2_tight_example.
# This may be replaced when dependencies are built.
