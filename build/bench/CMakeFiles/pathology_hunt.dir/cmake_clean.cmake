file(REMOVE_RECURSE
  "CMakeFiles/pathology_hunt.dir/pathology_hunt.cpp.o"
  "CMakeFiles/pathology_hunt.dir/pathology_hunt.cpp.o.d"
  "pathology_hunt"
  "pathology_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathology_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
