# Empty compiler generated dependencies file for pathology_hunt.
# This may be replaced when dependencies are built.
