# Empty dependencies file for table3_hybrid.
# This may be replaced when dependencies are built.
