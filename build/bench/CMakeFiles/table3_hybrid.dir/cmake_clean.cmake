file(REMOVE_RECURSE
  "CMakeFiles/table3_hybrid.dir/table3_hybrid.cpp.o"
  "CMakeFiles/table3_hybrid.dir/table3_hybrid.cpp.o.d"
  "table3_hybrid"
  "table3_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
