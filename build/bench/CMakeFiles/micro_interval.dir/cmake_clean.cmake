file(REMOVE_RECURSE
  "CMakeFiles/micro_interval.dir/micro_interval.cpp.o"
  "CMakeFiles/micro_interval.dir/micro_interval.cpp.o.d"
  "micro_interval"
  "micro_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
