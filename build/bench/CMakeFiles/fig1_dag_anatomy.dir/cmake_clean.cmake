file(REMOVE_RECURSE
  "CMakeFiles/fig1_dag_anatomy.dir/fig1_dag_anatomy.cpp.o"
  "CMakeFiles/fig1_dag_anatomy.dir/fig1_dag_anatomy.cpp.o.d"
  "fig1_dag_anatomy"
  "fig1_dag_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dag_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
