# Empty dependencies file for fig1_dag_anatomy.
# This may be replaced when dependencies are built.
