file(REMOVE_RECURSE
  "CMakeFiles/datalog_rulechange_test.dir/datalog_rulechange_test.cpp.o"
  "CMakeFiles/datalog_rulechange_test.dir/datalog_rulechange_test.cpp.o.d"
  "datalog_rulechange_test"
  "datalog_rulechange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_rulechange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
