# Empty dependencies file for datalog_rulechange_test.
# This may be replaced when dependencies are built.
