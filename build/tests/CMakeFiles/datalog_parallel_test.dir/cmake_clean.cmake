file(REMOVE_RECURSE
  "CMakeFiles/datalog_parallel_test.dir/datalog_parallel_test.cpp.o"
  "CMakeFiles/datalog_parallel_test.dir/datalog_parallel_test.cpp.o.d"
  "datalog_parallel_test"
  "datalog_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
