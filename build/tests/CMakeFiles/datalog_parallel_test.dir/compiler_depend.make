# Empty compiler generated dependencies file for datalog_parallel_test.
# This may be replaced when dependencies are built.
