# Empty dependencies file for datalog_eval_test.
# This may be replaced when dependencies are built.
