file(REMOVE_RECURSE
  "CMakeFiles/datalog_eval_test.dir/datalog_eval_test.cpp.o"
  "CMakeFiles/datalog_eval_test.dir/datalog_eval_test.cpp.o.d"
  "datalog_eval_test"
  "datalog_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
