# Empty dependencies file for datalog_store_test.
# This may be replaced when dependencies are built.
