file(REMOVE_RECURSE
  "CMakeFiles/datalog_store_test.dir/datalog_store_test.cpp.o"
  "CMakeFiles/datalog_store_test.dir/datalog_store_test.cpp.o.d"
  "datalog_store_test"
  "datalog_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
