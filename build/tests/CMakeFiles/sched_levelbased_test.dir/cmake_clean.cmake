file(REMOVE_RECURSE
  "CMakeFiles/sched_levelbased_test.dir/sched_levelbased_test.cpp.o"
  "CMakeFiles/sched_levelbased_test.dir/sched_levelbased_test.cpp.o.d"
  "sched_levelbased_test"
  "sched_levelbased_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_levelbased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
