# Empty dependencies file for sched_levelbased_test.
# This may be replaced when dependencies are built.
