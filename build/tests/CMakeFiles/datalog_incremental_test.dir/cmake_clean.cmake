file(REMOVE_RECURSE
  "CMakeFiles/datalog_incremental_test.dir/datalog_incremental_test.cpp.o"
  "CMakeFiles/datalog_incremental_test.dir/datalog_incremental_test.cpp.o.d"
  "datalog_incremental_test"
  "datalog_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
