file(REMOVE_RECURSE
  "CMakeFiles/datalog_aggregate_test.dir/datalog_aggregate_test.cpp.o"
  "CMakeFiles/datalog_aggregate_test.dir/datalog_aggregate_test.cpp.o.d"
  "datalog_aggregate_test"
  "datalog_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
