file(REMOVE_RECURSE
  "CMakeFiles/datalog_incremental.dir/datalog_incremental.cpp.o"
  "CMakeFiles/datalog_incremental.dir/datalog_incremental.cpp.o.d"
  "datalog_incremental"
  "datalog_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
