# Empty compiler generated dependencies file for datalog_incremental.
# This may be replaced when dependencies are built.
