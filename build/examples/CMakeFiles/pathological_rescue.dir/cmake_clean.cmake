file(REMOVE_RECURSE
  "CMakeFiles/pathological_rescue.dir/pathological_rescue.cpp.o"
  "CMakeFiles/pathological_rescue.dir/pathological_rescue.cpp.o.d"
  "pathological_rescue"
  "pathological_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathological_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
