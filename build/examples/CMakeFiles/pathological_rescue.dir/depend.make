# Empty dependencies file for pathological_rescue.
# This may be replaced when dependencies are built.
