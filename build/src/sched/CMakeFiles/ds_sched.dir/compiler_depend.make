# Empty compiler generated dependencies file for ds_sched.
# This may be replaced when dependencies are built.
