file(REMOVE_RECURSE
  "libds_sched.a"
)
