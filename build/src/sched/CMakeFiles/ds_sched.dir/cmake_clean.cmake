file(REMOVE_RECURSE
  "CMakeFiles/ds_sched.dir/factory.cpp.o"
  "CMakeFiles/ds_sched.dir/factory.cpp.o.d"
  "CMakeFiles/ds_sched.dir/hybrid.cpp.o"
  "CMakeFiles/ds_sched.dir/hybrid.cpp.o.d"
  "CMakeFiles/ds_sched.dir/level_based.cpp.o"
  "CMakeFiles/ds_sched.dir/level_based.cpp.o.d"
  "CMakeFiles/ds_sched.dir/logicblox.cpp.o"
  "CMakeFiles/ds_sched.dir/logicblox.cpp.o.d"
  "CMakeFiles/ds_sched.dir/lookahead.cpp.o"
  "CMakeFiles/ds_sched.dir/lookahead.cpp.o.d"
  "CMakeFiles/ds_sched.dir/oracle.cpp.o"
  "CMakeFiles/ds_sched.dir/oracle.cpp.o.d"
  "CMakeFiles/ds_sched.dir/scheduler.cpp.o"
  "CMakeFiles/ds_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/ds_sched.dir/signal_propagation.cpp.o"
  "CMakeFiles/ds_sched.dir/signal_propagation.cpp.o.d"
  "libds_sched.a"
  "libds_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
