
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/ds_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/hybrid.cpp" "src/sched/CMakeFiles/ds_sched.dir/hybrid.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/hybrid.cpp.o.d"
  "/root/repo/src/sched/level_based.cpp" "src/sched/CMakeFiles/ds_sched.dir/level_based.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/level_based.cpp.o.d"
  "/root/repo/src/sched/logicblox.cpp" "src/sched/CMakeFiles/ds_sched.dir/logicblox.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/logicblox.cpp.o.d"
  "/root/repo/src/sched/lookahead.cpp" "src/sched/CMakeFiles/ds_sched.dir/lookahead.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/lookahead.cpp.o.d"
  "/root/repo/src/sched/oracle.cpp" "src/sched/CMakeFiles/ds_sched.dir/oracle.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/oracle.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/ds_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/signal_propagation.cpp" "src/sched/CMakeFiles/ds_sched.dir/signal_propagation.cpp.o" "gcc" "src/sched/CMakeFiles/ds_sched.dir/signal_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/ds_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
