file(REMOVE_RECURSE
  "libds_graph.a"
)
