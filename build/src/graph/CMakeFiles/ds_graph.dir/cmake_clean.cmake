file(REMOVE_RECURSE
  "CMakeFiles/ds_graph.dir/critical_path.cpp.o"
  "CMakeFiles/ds_graph.dir/critical_path.cpp.o.d"
  "CMakeFiles/ds_graph.dir/dag.cpp.o"
  "CMakeFiles/ds_graph.dir/dag.cpp.o.d"
  "CMakeFiles/ds_graph.dir/digraph_builder.cpp.o"
  "CMakeFiles/ds_graph.dir/digraph_builder.cpp.o.d"
  "CMakeFiles/ds_graph.dir/dot_export.cpp.o"
  "CMakeFiles/ds_graph.dir/dot_export.cpp.o.d"
  "CMakeFiles/ds_graph.dir/levels.cpp.o"
  "CMakeFiles/ds_graph.dir/levels.cpp.o.d"
  "CMakeFiles/ds_graph.dir/reachability.cpp.o"
  "CMakeFiles/ds_graph.dir/reachability.cpp.o.d"
  "CMakeFiles/ds_graph.dir/stats.cpp.o"
  "CMakeFiles/ds_graph.dir/stats.cpp.o.d"
  "CMakeFiles/ds_graph.dir/topo.cpp.o"
  "CMakeFiles/ds_graph.dir/topo.cpp.o.d"
  "libds_graph.a"
  "libds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
