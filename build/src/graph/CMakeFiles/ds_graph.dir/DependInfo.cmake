
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/critical_path.cpp" "src/graph/CMakeFiles/ds_graph.dir/critical_path.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/critical_path.cpp.o.d"
  "/root/repo/src/graph/dag.cpp" "src/graph/CMakeFiles/ds_graph.dir/dag.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/dag.cpp.o.d"
  "/root/repo/src/graph/digraph_builder.cpp" "src/graph/CMakeFiles/ds_graph.dir/digraph_builder.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/digraph_builder.cpp.o.d"
  "/root/repo/src/graph/dot_export.cpp" "src/graph/CMakeFiles/ds_graph.dir/dot_export.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/dot_export.cpp.o.d"
  "/root/repo/src/graph/levels.cpp" "src/graph/CMakeFiles/ds_graph.dir/levels.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/levels.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "src/graph/CMakeFiles/ds_graph.dir/reachability.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/reachability.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/ds_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/stats.cpp.o.d"
  "/root/repo/src/graph/topo.cpp" "src/graph/CMakeFiles/ds_graph.dir/topo.cpp.o" "gcc" "src/graph/CMakeFiles/ds_graph.dir/topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
