# Empty compiler generated dependencies file for ds_graph.
# This may be replaced when dependencies are built.
