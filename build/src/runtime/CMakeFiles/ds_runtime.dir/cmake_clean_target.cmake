file(REMOVE_RECURSE
  "libds_runtime.a"
)
