# Empty compiler generated dependencies file for ds_runtime.
# This may be replaced when dependencies are built.
