file(REMOVE_RECURSE
  "CMakeFiles/ds_runtime.dir/executor.cpp.o"
  "CMakeFiles/ds_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/ds_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/ds_runtime.dir/thread_pool.cpp.o.d"
  "libds_runtime.a"
  "libds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
