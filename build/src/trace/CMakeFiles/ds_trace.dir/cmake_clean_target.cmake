file(REMOVE_RECURSE
  "libds_trace.a"
)
