file(REMOVE_RECURSE
  "CMakeFiles/ds_trace.dir/cascade.cpp.o"
  "CMakeFiles/ds_trace.dir/cascade.cpp.o.d"
  "CMakeFiles/ds_trace.dir/generators.cpp.o"
  "CMakeFiles/ds_trace.dir/generators.cpp.o.d"
  "CMakeFiles/ds_trace.dir/job_trace.cpp.o"
  "CMakeFiles/ds_trace.dir/job_trace.cpp.o.d"
  "CMakeFiles/ds_trace.dir/table_traces.cpp.o"
  "CMakeFiles/ds_trace.dir/table_traces.cpp.o.d"
  "CMakeFiles/ds_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ds_trace.dir/trace_io.cpp.o.d"
  "libds_trace.a"
  "libds_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
