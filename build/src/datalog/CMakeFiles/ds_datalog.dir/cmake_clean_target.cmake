file(REMOVE_RECURSE
  "libds_datalog.a"
)
