file(REMOVE_RECURSE
  "CMakeFiles/ds_datalog.dir/ast.cpp.o"
  "CMakeFiles/ds_datalog.dir/ast.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/database.cpp.o"
  "CMakeFiles/ds_datalog.dir/database.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/eval.cpp.o"
  "CMakeFiles/ds_datalog.dir/eval.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/incremental.cpp.o"
  "CMakeFiles/ds_datalog.dir/incremental.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/lexer.cpp.o"
  "CMakeFiles/ds_datalog.dir/lexer.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/parallel_update.cpp.o"
  "CMakeFiles/ds_datalog.dir/parallel_update.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/parser.cpp.o"
  "CMakeFiles/ds_datalog.dir/parser.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/relation.cpp.o"
  "CMakeFiles/ds_datalog.dir/relation.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/schedule_bridge.cpp.o"
  "CMakeFiles/ds_datalog.dir/schedule_bridge.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/stratify.cpp.o"
  "CMakeFiles/ds_datalog.dir/stratify.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/validate.cpp.o"
  "CMakeFiles/ds_datalog.dir/validate.cpp.o.d"
  "CMakeFiles/ds_datalog.dir/value.cpp.o"
  "CMakeFiles/ds_datalog.dir/value.cpp.o.d"
  "libds_datalog.a"
  "libds_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
