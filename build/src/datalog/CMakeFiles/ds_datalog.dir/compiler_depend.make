# Empty compiler generated dependencies file for ds_datalog.
# This may be replaced when dependencies are built.
