
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/ast.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/ast.cpp.o.d"
  "/root/repo/src/datalog/database.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/database.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/database.cpp.o.d"
  "/root/repo/src/datalog/eval.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/eval.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/eval.cpp.o.d"
  "/root/repo/src/datalog/incremental.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/incremental.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/incremental.cpp.o.d"
  "/root/repo/src/datalog/lexer.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/lexer.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/lexer.cpp.o.d"
  "/root/repo/src/datalog/parallel_update.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/parallel_update.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/parallel_update.cpp.o.d"
  "/root/repo/src/datalog/parser.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/parser.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/parser.cpp.o.d"
  "/root/repo/src/datalog/relation.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/relation.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/relation.cpp.o.d"
  "/root/repo/src/datalog/schedule_bridge.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/schedule_bridge.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/schedule_bridge.cpp.o.d"
  "/root/repo/src/datalog/stratify.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/stratify.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/stratify.cpp.o.d"
  "/root/repo/src/datalog/validate.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/validate.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/validate.cpp.o.d"
  "/root/repo/src/datalog/value.cpp" "src/datalog/CMakeFiles/ds_datalog.dir/value.cpp.o" "gcc" "src/datalog/CMakeFiles/ds_datalog.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/ds_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
