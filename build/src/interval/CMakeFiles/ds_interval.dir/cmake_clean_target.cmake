file(REMOVE_RECURSE
  "libds_interval.a"
)
