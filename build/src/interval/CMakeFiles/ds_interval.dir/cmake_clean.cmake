file(REMOVE_RECURSE
  "CMakeFiles/ds_interval.dir/interval_index.cpp.o"
  "CMakeFiles/ds_interval.dir/interval_index.cpp.o.d"
  "CMakeFiles/ds_interval.dir/interval_set.cpp.o"
  "CMakeFiles/ds_interval.dir/interval_set.cpp.o.d"
  "libds_interval.a"
  "libds_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
