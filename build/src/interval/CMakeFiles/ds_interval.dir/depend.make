# Empty dependencies file for ds_interval.
# This may be replaced when dependencies are built.
