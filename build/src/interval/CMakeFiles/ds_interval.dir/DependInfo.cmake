
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/interval_index.cpp" "src/interval/CMakeFiles/ds_interval.dir/interval_index.cpp.o" "gcc" "src/interval/CMakeFiles/ds_interval.dir/interval_index.cpp.o.d"
  "/root/repo/src/interval/interval_set.cpp" "src/interval/CMakeFiles/ds_interval.dir/interval_set.cpp.o" "gcc" "src/interval/CMakeFiles/ds_interval.dir/interval_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
