file(REMOVE_RECURSE
  "CMakeFiles/ds_sim.dir/audit.cpp.o"
  "CMakeFiles/ds_sim.dir/audit.cpp.o.d"
  "CMakeFiles/ds_sim.dir/engine.cpp.o"
  "CMakeFiles/ds_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ds_sim.dir/meta.cpp.o"
  "CMakeFiles/ds_sim.dir/meta.cpp.o.d"
  "libds_sim.a"
  "libds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
